"""Columnar batch execution engine for the SPARQL algebra.

The row engine (:mod:`repro.sparql.plan`) streams one python dict per
solution, which caps it near 100k triples.  This module executes the
same logical algebra over :class:`Batch` values instead: parallel lists
of integer term IDs, one column per variable, moved between operators
with C-level bulk operations (``list.extend`` of whole index runs,
sequence repetition, ``map(col.__getitem__, sel)`` gathers) so the
python interpreter touches *groups*, not rows.

Execution strategies, chosen per BGP step:

* **scan** — a triple pattern materialises straight from one nested
  index of :meth:`repro.rdf.graph.Graph.runs`: whole insertion-ordered
  leaf runs are bulk-extended into columns;
* **fused merge join** — the first join of a BGP consumes the scan's
  grouped runs directly: the runs of one index level are merged
  group-at-a-time against probes of the other pattern's index, and each
  matching (run × run) pair emits its cross product with sequence
  repetition — per-key python work, per-row C work;
* **selection-vector probe** — later conjuncts probe an index per row,
  appending matches to the new column and row indexes to a selection
  vector; the already-computed columns are gathered once at the end.

Joins across groups/unions are batch-at-a-time hash joins; FILTER,
ORDER BY and slicing are vectorized over columns.  Internally batches
carry *bag* semantics (duplicates survive until the result boundary,
where projection deduplicates on ID tuples — the same boundary the row
engine uses), and unbound cells hold the :data:`UNBOUND` sentinel,
chosen far below the FILTER compiler's negative sentinel IDs so the two
can never collide.

The conjunct order comes from the row planner
(:func:`repro.sparql.plan.plan_bgp`), so the two engines always agree
on join order, and the term-level evaluator of
:mod:`repro.sparql.algebra` stays the equivalence oracle: every batch
plan must produce exactly its solution set (asserted by the randomized
fuzz suite and the ``columnar`` benchmark gate).
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import SparqlEvaluationError
from repro.gpq.evaluation import extend_id_bindings
from repro.obs.analyze import format_actuals
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.sparql.algebra import AlgebraNode, Bgp, Filter, Join, LeftJoin
from repro.sparql.algebra import Union as AlgebraUnion
from repro.sparql.ast import (
    BooleanExpr,
    Comparison,
    FilterExpr,
    OrderCondition,
)
from repro.sparql.plan import _BOUND_SELECTIVITY, OrderKey, plan_bgp

__all__ = [
    "UNBOUND",
    "Batch",
    "BatchOp",
    "BatchBgp",
    "BatchJoin",
    "BatchUnion",
    "BatchLeftJoin",
    "BatchFilter",
    "build_batch_plan",
    "execute_batch",
    "extend_bindings_batch",
    "select_id_batch",
    "select_id_rows_batch",
    "batch_slice",
    "batch_top_k",
]

#: Sentinel ID for an unbound cell.  The FILTER compiler hands
#: uninterned constants small negative sentinels (-1, -2, ...), and real
#: dictionary IDs are non-negative, so a huge negative constant can
#: never collide with either.
UNBOUND = -(2**62)

#: A compiled conjunct position: an integer ID or a still-free Variable.
_Slot = Union[int, Variable]

_IDRow = Tuple[Optional[int], ...]


class Batch:
    """A batch of solutions as parallel integer columns.

    ``schema`` names one :class:`Variable` per column; ``columns`` holds
    the parallel lists of dictionary IDs (``UNBOUND`` marks an unbound
    cell); ``n`` is the row count, kept explicitly so zero-column
    batches (an empty group pattern binds no variables but has one row)
    stay representable.
    """

    __slots__ = ("schema", "columns", "n")

    def __init__(
        self,
        schema: Tuple[Variable, ...],
        columns: List[List[int]],
        n: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.n = n if n is not None else (len(columns[0]) if columns else 0)

    @classmethod
    def empty(cls, schema: Tuple[Variable, ...] = ()) -> "Batch":
        return cls(schema, [[] for _ in schema], 0)

    @classmethod
    def singleton(cls) -> "Batch":
        """One row binding nothing — the empty group pattern's result."""
        return cls((), [], 1)

    def col(self, var: Variable) -> Optional[List[int]]:
        """The column for ``var``, or None when it is not in the schema."""
        try:
            return self.columns[self.schema.index(var)]
        except ValueError:
            return None

    def rows(self) -> Iterator[Tuple[int, ...]]:
        """Iterate rows as ID tuples in schema order (bag, with dups)."""
        if not self.columns:
            return iter(() for _ in range(self.n))
        return zip(*self.columns)

    def gather(self, sel: Sequence[int]) -> "Batch":
        """A new batch with the rows named by the selection vector."""
        return Batch(
            self.schema,
            [list(map(c.__getitem__, sel)) for c in self.columns],
            len(sel),
        )

    def id_rows(self, variables: Sequence[Variable]) -> Set[_IDRow]:
        """Distinct projected rows as ID tuples (``None`` = unbound).

        This is the result boundary: bag-semantics columns collapse to
        the same distinct row set the row engine's ``select_id_rows``
        produces, with ``UNBOUND`` translated to ``None``.
        """
        if self.n == 0:
            return set()
        cols: List[List[Optional[int]]] = []
        for var in variables:
            col = self.col(var)
            if col is None:
                cols.append([None] * self.n)
            elif UNBOUND in col:
                cols.append([None if c == UNBOUND else c for c in col])
            else:
                cols.append(col)  # type: ignore[arg-type]
        if not cols:
            return {()}
        return set(zip(*cols))


# ---------------------------------------------------------------------------
# Scans and BGP extension steps
# ---------------------------------------------------------------------------


def _repeat_constraints(
    free: List[Tuple[int, Variable]],
) -> List[Tuple[int, int]]:
    """Position pairs a repeated free variable forces to be equal."""
    first: Dict[Variable, int] = {}
    out: List[Tuple[int, int]] = []
    for pos, var in free:
        if var in first:
            out.append((first[var], pos))
        else:
            first[var] = pos
    return out


def _scan_batch(graph: Graph, slots: Tuple[_Slot, _Slot, _Slot]) -> Batch:
    """Materialise one triple pattern as a batch, straight from runs."""
    args: List[Optional[int]] = [None, None, None]
    free: List[Tuple[int, Variable]] = []
    for pos, slot in enumerate(slots):
        if isinstance(slot, int):
            args[pos] = slot
        else:
            free.append((pos, slot))
    s, p, o = args
    if not free:
        n = 1 if graph.contains_ids(s, p, o) else 0  # type: ignore[arg-type]
        return Batch((), [], n)
    constraints = _repeat_constraints(free)
    if constraints:
        return _scan_repeated(graph, args, free, constraints)
    schema = tuple(var for _, var in free)
    if len(free) == 1:
        pos = free[0][0]
        if pos == 2:  # (s, p, ?o)
            run = graph.runs("spo").get(s, {}).get(p, ())
        elif pos == 0:  # (?s, p, o)
            run = graph.runs("pos").get(p, {}).get(o, ())
        else:  # (s, ?p, o)
            run = graph.runs("osp").get(o, {}).get(s, ())
        return Batch(schema, [list(run)])
    if len(free) == 2:
        col1: List[int] = []
        col2: List[int] = []
        if s is not None:  # (s, ?p, ?o)
            level = graph.runs("spo").get(s, {})
        elif p is not None:  # (?s, p, ?o) — runs keyed by object
            level = graph.runs("pos").get(p, {})
        else:  # (?s, ?p, o) — runs keyed by subject
            level = graph.runs("osp").get(o, {})
        for key, run in level.items():
            col2.extend(run)
            col1.extend([key] * len(run))
        if s is not None:  # keys are predicates, runs are objects
            return Batch(schema, [col1, col2])
        if p is not None:  # keys are objects, runs are subjects
            return Batch(schema, [col2, col1])
        return Batch(schema, [col1, col2])  # keys subjects, runs predicates
    # Fully unbound: unzip the whole triple set in one C pass.
    ids = list(graph.id_triples())
    if not ids:
        return Batch.empty(schema)
    c0, c1, c2 = map(list, zip(*ids))
    return Batch(schema, [c0, c1, c2])


def _scan_repeated(
    graph: Graph,
    args: List[Optional[int]],
    free: List[Tuple[int, Variable]],
    constraints: List[Tuple[int, int]],
) -> Batch:
    """Scan a pattern whose free variables repeat (e.g. ``(?x, p, ?x)``)."""
    seen: Dict[Variable, int] = {}
    emit: List[Tuple[int, Variable]] = []
    for pos, var in free:
        if var not in seen:
            seen[var] = pos
            emit.append((pos, var))
    schema = tuple(var for _, var in emit)
    positions = [pos for pos, _ in emit]
    cols: List[List[int]] = [[] for _ in emit]
    for ids in graph.triples_ids(args[0], args[1], args[2]):
        if all(ids[i] == ids[j] for i, j in constraints):
            for k, pos in enumerate(positions):
                cols[k].append(ids[pos])
    return Batch(schema, cols)


def _extend_batch(
    graph: Graph, batch: Batch, slots: Tuple[_Slot, _Slot, _Slot]
) -> Batch:
    """Join a batch with one conjunct via per-row index probes.

    The probe loop only builds the new column(s) plus a selection
    vector of source row indexes; the existing columns are gathered
    once afterwards.  Within a BGP every schema variable is bound, so
    key columns never contain ``UNBOUND``.
    """
    schema = batch.schema
    n = batch.n
    sources: List[Union[int, List[int], None]] = [None, None, None]
    free: List[Tuple[int, Variable]] = []
    for pos, slot in enumerate(slots):
        if isinstance(slot, int):
            sources[pos] = slot
        else:
            col = batch.col(slot)
            if col is not None:
                sources[pos] = col
            else:
                free.append((pos, slot))
    if len(free) > 1 or _repeat_constraints(free):
        return _extend_generic(graph, batch, sources, free)

    def feed(pos: int) -> Sequence[int]:
        src = sources[pos]
        if isinstance(src, list):
            return src
        return [src] * n  # type: ignore[list-item]

    sel: List[int] = []
    if not free:
        contains = graph.contains_ids
        sel = [
            i
            for i, key in enumerate(zip(feed(0), feed(1), feed(2)))
            if contains(*key)
        ]
        return batch.gather(sel)
    pos, var = free[0]
    new_col: List[int] = []
    if pos == 2:
        index, k1, k2 = graph.runs("spo"), feed(0), feed(1)
    elif pos == 0:
        index, k1, k2 = graph.runs("pos"), feed(1), feed(2)
    else:
        index, k1, k2 = graph.runs("osp"), feed(2), feed(0)
    index_get = index.get
    for i, (a, b) in enumerate(zip(k1, k2)):
        level = index_get(a)
        if level is None:
            continue
        run = level.get(b)
        if run:
            new_col.extend(run)
            sel.extend([i] * len(run))
    out = batch.gather(sel)
    return Batch(schema + (var,), out.columns + [new_col], len(sel))


def _extend_generic(
    graph: Graph,
    batch: Batch,
    sources: List[Union[int, List[int], None]],
    free: List[Tuple[int, Variable]],
) -> Batch:
    """Fallback extension: several or repeated free positions per row."""
    constraints = _repeat_constraints(free)
    emit: List[Tuple[int, Variable]] = []
    seen: Set[Variable] = set()
    for pos, var in free:
        if var not in seen:
            seen.add(var)
            emit.append((pos, var))
    sel: List[int] = []
    new_cols: List[List[int]] = [[] for _ in emit]
    triples_ids = graph.triples_ids
    for i in range(batch.n):
        args = [
            src[i] if isinstance(src, list) else src for src in sources
        ]
        for ids in triples_ids(args[0], args[1], args[2]):
            if constraints and not all(
                ids[a] == ids[b] for a, b in constraints
            ):
                continue
            for k, (pos, _) in enumerate(emit):
                new_cols[k].append(ids[pos])
            sel.append(i)
    out = batch.gather(sel)
    return Batch(
        batch.schema + tuple(var for _, var in emit),
        out.columns + new_cols,
        len(sel),
    )


def extend_bindings_batch(
    graph: Graph,
    slots: Tuple[_Slot, _Slot, _Slot],
    bindings: Sequence[Dict[Variable, int]],
) -> Tuple[List[Dict[Variable, int]], List[int]]:
    """Columnar twin of a per-row ``extend_id_bindings`` loop.

    Converts the binding dicts to columns once, runs the
    selection-vector probe, and converts back, returning the extended
    bindings *and* the source-row index of each output row (for request
    -origin tracking in the federation layer).

    Order fidelity is a hard contract: output order is exactly the
    per-row loop's — source-row-major, matches in ``triples_ids`` index
    order — because federated consumers batch, slice and dedupe on
    stream order, and message counts are test-gated on it.  Rows with
    heterogeneous domains (mixed-UNION pulls) fall back to the per-row
    loop rather than approximate.
    """
    if not bindings:
        return [], []
    domain = tuple(bindings[0])
    if any(tuple(b) != domain for b in bindings):
        out: List[Dict[Variable, int]] = []
        sel: List[int] = []
        for i, partial in enumerate(bindings):
            for extended in extend_id_bindings(graph, slots, partial):
                out.append(extended)
                sel.append(i)
        return out, sel
    columns = [[b[v] for b in bindings] for v in domain]
    batch = Batch(domain, columns, len(bindings))
    source = Variable("__source_row__")
    batch = Batch(
        domain + (source,),
        columns + [list(range(batch.n))],
        batch.n,
    )
    extended_batch = _extend_batch(graph, batch, slots)
    sel = extended_batch.col(source) or []
    keep = [v for v in extended_batch.schema if v != source]
    cols = [extended_batch.col(v) for v in keep]
    rows = zip(*cols) if cols else iter(() for _ in range(extended_batch.n))
    return [dict(zip(keep, row)) for row in rows], list(sel)


def _fused_scan_join(
    graph: Graph,
    slots0: Tuple[_Slot, _Slot, _Slot],
    slots1: Tuple[_Slot, _Slot, _Slot],
) -> Optional[Batch]:
    """Merge-join the first two conjuncts directly over grouped runs.

    Applies when conjunct 0 is ``(?a, p0, ?b)`` and conjunct 1 reaches
    the shared variable through a ground predicate with a fresh third
    variable.  The scan side enumerates one index level as grouped runs
    keyed on the join variable, the probe side answers each distinct
    key with one leaf lookup, and each match emits a (run × run) cross
    product via sequence repetition.  Returns None when the shapes do
    not line up (the generic per-row probe handles those).
    """
    a, p0, b = slots0
    if not (
        isinstance(a, Variable)
        and isinstance(b, Variable)
        and isinstance(p0, int)
        and a != b
    ):
        return None
    s1, p1, o1 = slots1
    if not isinstance(p1, int):
        return None
    if isinstance(s1, Variable) and s1 in (a, b):
        join_var, new_slot, probe_subject = s1, o1, True
    elif isinstance(o1, Variable) and o1 in (a, b):
        join_var, new_slot, probe_subject = o1, s1, False
    else:
        return None
    if not isinstance(new_slot, Variable) or new_slot in (a, b):
        return None
    spo = graph.runs("spo")
    if join_var == b:
        # Enumerate (b, subjects-run) groups from POS; column order a, b.
        groups = graph.runs("pos").get(p0, {}).items()
        fixed_first = True
    else:
        # Subject-major enumeration: worth it only when the subject
        # level is not much wider than the scan itself.
        if len(spo) > 2 * graph.count_ids(predicate=p0) + 16:
            return None
        groups = (
            (subj, run)
            for subj, by_pred in spo.items()
            for run in (by_pred.get(p0),)
            if run
        )
        fixed_first = False
    if probe_subject:
        probe_level = spo

        def probe(key: int) -> Optional[Sequence[int]]:
            leaf = probe_level.get(key)
            return leaf.get(p1) if leaf else None

    else:
        probe_leaf = graph.runs("pos").get(p1, {})
        probe = probe_leaf.get  # type: ignore[assignment]
    col_key: List[int] = []
    col_run: List[int] = []
    col_new: List[int] = []
    for key, run in groups:
        matches = probe(key)
        if not matches:
            continue
        n_run = len(run)
        n_new = len(matches)
        if n_run == 1:
            value = next(iter(run))
            col_run.extend([value] * n_new)
            col_new.extend(matches)
        else:
            run_list = list(run)
            for value in matches:
                col_run.extend(run_list)
                col_new.extend([value] * n_run)
        col_key.extend([key] * (n_run * n_new))
    if fixed_first:
        schema = (a, b, new_slot)
        columns = [col_run, col_key, col_new]
    else:
        schema = (a, b, new_slot)
        columns = [col_key, col_run, col_new]
    return Batch(schema, columns, len(col_key))


# ---------------------------------------------------------------------------
# FILTER compilation: column masks
# ---------------------------------------------------------------------------

_Mask = List[bool]


def _compile_mask(
    graph: Graph, expr: FilterExpr, sentinels: Dict[Term, int]
) -> Callable[[Batch], _Mask]:
    """Compile a FILTER expression into a vectorized column mask.

    Ground terms resolve to dictionary IDs (or shared negative
    sentinels) once at compile time, exactly as the row engine's
    ``compile_filter`` does; an unbound cell fails every comparison
    (SPARQL error semantics collapse to false in this fragment).
    """
    if isinstance(expr, BooleanExpr):
        left = _compile_mask(graph, expr.left, sentinels)
        right = _compile_mask(graph, expr.right, sentinels)
        if expr.op == "&&":
            return lambda b: [x and y for x, y in zip(left(b), right(b))]
        return lambda b: [x or y for x, y in zip(left(b), right(b))]
    if not isinstance(expr, Comparison):  # pragma: no cover
        raise SparqlEvaluationError(f"unknown filter expression {expr!r}")
    equals = expr.op == "="
    if not isinstance(expr.left, Variable) and not isinstance(
        expr.right, Variable
    ):
        verdict = (expr.left == expr.right) is equals
        return lambda b: [verdict] * b.n

    def resolve_ground(term: Term) -> int:
        tid = graph.term_id(term)
        if tid is None:
            tid = sentinels.setdefault(term, -1 - len(sentinels))
        return tid

    if isinstance(expr.left, Variable) and isinstance(expr.right, Variable):
        lvar, rvar = expr.left, expr.right

        def var_mask(batch: Batch) -> _Mask:
            ca = batch.col(lvar)
            cb = batch.col(rvar)
            if ca is None or cb is None:
                return [False] * batch.n
            if equals:
                return [x == y and x != UNBOUND for x, y in zip(ca, cb)]
            return [
                x != y and x != UNBOUND and y != UNBOUND
                for x, y in zip(ca, cb)
            ]

        return var_mask
    if isinstance(expr.left, Variable):
        var, ground_id = expr.left, resolve_ground(expr.right)
    else:
        var, ground_id = expr.right, resolve_ground(expr.left)

    def ground_mask(batch: Batch) -> _Mask:
        col = batch.col(var)
        if col is None:
            return [False] * batch.n
        if equals:
            return [x == ground_id for x in col]
        return [x != ground_id and x != UNBOUND for x in col]

    return ground_mask


# ---------------------------------------------------------------------------
# Batch operators
# ---------------------------------------------------------------------------


class BatchOp:
    """Base class: an operator producing a whole :class:`Batch`.

    Unlike the row operators these are not iterators — each ``execute``
    materialises its full result, which is the point: all per-row work
    collapses into C-level bulk list operations.  ``cardinality``
    mirrors the row planner's estimates so join operands order the
    same way.  ``actuals`` is the EXPLAIN ANALYZE counter dict
    (attached per node by :func:`repro.obs.analyze.attach_actuals`);
    the class-level ``None`` means analysis is off, costing one
    attribute check per batch produced.
    """

    variables: FrozenSet[Variable] = frozenset()
    cardinality: float = 1.0
    actuals: Optional[Dict[str, int]] = None

    def children(self) -> Tuple["BatchOp", ...]:
        return ()

    def _execute(self) -> Batch:
        raise NotImplementedError

    def execute(self) -> Batch:
        batch = self._execute()
        if self.actuals is not None:
            actuals = self.actuals
            actuals["batches"] = actuals.get("batches", 0) + 1
            actuals["rows_out"] = actuals.get("rows_out", 0) + batch.n
        return batch

    def _annotate(self, line: str) -> str:
        """Append the actuals note to one explain line (analyze mode)."""
        return f"{line}{format_actuals(self.actuals)}"

    def explain(self, depth: int = 0) -> List[str]:
        raise NotImplementedError


class BatchEmpty(BatchOp):
    """A pattern that provably cannot match."""

    def __init__(self, variables: FrozenSet[Variable]) -> None:
        self.variables = variables
        self.cardinality = 0.0

    def _execute(self) -> Batch:
        return Batch.empty(tuple(sorted(self.variables, key=str)))

    def explain(self, depth: int = 0) -> List[str]:
        return [self._annotate(f"{'  ' * depth}BatchEmpty")]


class BatchSingleton(BatchOp):
    """The empty group pattern: one row, no columns."""

    def _execute(self) -> Batch:
        return Batch.singleton()

    def explain(self, depth: int = 0) -> List[str]:
        return [self._annotate(f"{'  ' * depth}BatchSingleton")]


class BatchBgp(BatchOp):
    """Columnar BGP execution over the shared cost-based order."""

    def __init__(self, graph: Graph, patterns: Sequence) -> None:
        self.graph = graph
        out: Set[Variable] = set()
        for tp in patterns:
            out.update(tp.variables())
        self.variables = frozenset(out)
        self.ordered, self.compiled, self.cardinality = plan_bgp(
            graph, patterns
        )

    def _execute(self) -> Batch:
        compiled = self.compiled
        if compiled is None:
            return Batch.empty(tuple(sorted(self.variables, key=str)))
        graph = self.graph
        batch: Optional[Batch] = None
        index = 0
        while index < len(compiled):
            slots = compiled[index]
            if batch is None:
                if index + 1 < len(compiled):
                    fused = _fused_scan_join(
                        graph, slots, compiled[index + 1]
                    )
                    if fused is not None:
                        batch = fused
                        index += 2
                        if batch.n == 0:
                            break
                        continue
                batch = _scan_batch(graph, slots)
            else:
                batch = _extend_batch(graph, batch, slots)
            if batch.n == 0:
                break
            index += 1
        if batch is None:  # pragma: no cover - empty BGPs use Singleton
            return Batch.singleton()
        return batch

    def explain(self, depth: int = 0) -> List[str]:
        pad = "  " * depth
        if self.compiled is None:
            return [self._annotate(f"{pad}BatchBgp [unsatisfiable]")]
        lines = [self._annotate(f"{pad}BatchBgp est={self.cardinality:.0f}")]
        for tp in self.ordered:
            lines.append(f"{pad}  . {tp.n3()}")
        return lines


def _join_batches(left: Batch, right: Batch) -> Batch:
    """Batch-at-a-time join on the shared variables.

    When every shared cell is bound on both sides the join is a pure
    hash join: bucket the smaller side, probe with the larger, gather.
    Heterogeneous UNION domains (``UNBOUND`` in a shared column) fall
    back to a per-row compatibility merge mirroring ``omega_join``.
    """
    shared = tuple(
        sorted(
            set(left.schema) & set(right.schema), key=lambda v: v.name
        )
    )
    if left.n == 0 or right.n == 0:
        schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        return Batch.empty(schema)
    if not shared:
        # Cross product, probe-major.
        sel_l = [i for i in range(left.n) for _ in range(right.n)]
        sel_r = list(range(right.n)) * left.n
        gl = left.gather(sel_l)
        gr = right.gather(sel_r)
        return Batch(
            gl.schema + gr.schema, gl.columns + gr.columns, len(sel_l)
        )
    lcols = [left.col(v) for v in shared]
    rcols = [right.col(v) for v in shared]
    strict = not any(UNBOUND in c for c in lcols) and not any(
        UNBOUND in c for c in rcols
    )
    if strict:
        build, probe = (right, left) if right.n <= left.n else (left, right)
        bcols = [build.col(v) for v in shared]
        pcols = [probe.col(v) for v in shared]
        buckets: Dict[object, List[int]] = {}
        setdefault = buckets.setdefault
        if len(shared) == 1:
            for j, key in enumerate(bcols[0]):
                setdefault(key, []).append(j)
            probe_keys: Sequence[object] = pcols[0]
        else:
            for j, key in enumerate(zip(*bcols)):
                setdefault(key, []).append(j)
            probe_keys = list(zip(*pcols))
        sel_p: List[int] = []
        sel_b: List[int] = []
        get = buckets.get
        for i, key in enumerate(probe_keys):
            js = get(key)
            if js:
                sel_b.extend(js)
                sel_p.extend([i] * len(js))
        gp = probe.gather(sel_p)
        build_only = [v for v in build.schema if v not in probe.schema]
        bonly_cols = [
            list(map(build.col(v).__getitem__, sel_b)) for v in build_only
        ]
        return Batch(
            gp.schema + tuple(build_only),
            gp.columns + bonly_cols,
            len(sel_p),
        )
    # Loose path: per-row compatibility with UNBOUND as a wildcard.
    schema = left.schema + tuple(
        v for v in right.schema if v not in left.schema
    )
    out_cols: List[List[int]] = [[] for _ in schema]
    right_rows = list(right.rows())
    right_index = {v: k for k, v in enumerate(right.schema)}
    merged_src: List[Tuple[int, Optional[int]]] = []
    for var in schema:
        merged_src.append(
            (
                left.schema.index(var) if var in left.schema else -1,
                right_index.get(var),
            )
        )
    for lrow in left.rows():
        for rrow in right_rows:
            ok = True
            for var in shared:
                lv = lrow[left.schema.index(var)]
                rv = rrow[right_index[var]]
                if lv != rv and lv != UNBOUND and rv != UNBOUND:
                    ok = False
                    break
            if not ok:
                continue
            for k, (li, ri) in enumerate(merged_src):
                value = lrow[li] if li >= 0 else UNBOUND
                if value == UNBOUND and ri is not None:
                    value = rrow[ri]
                out_cols[k].append(value)
    return Batch(schema, out_cols)


class BatchJoin(BatchOp):
    """Join two batch sub-plans (cross-group/UNION joins)."""

    def __init__(self, left: BatchOp, right: BatchOp) -> None:
        self.left = left
        self.right = right
        self.variables = left.variables | right.variables
        shared = left.variables & right.variables
        denominator = max(1.0, _BOUND_SELECTIVITY ** len(shared))
        self.cardinality = min(
            left.cardinality * right.cardinality / denominator, 1e18
        )

    def children(self) -> Tuple[BatchOp, ...]:
        return (self.left, self.right)

    def _execute(self) -> Batch:
        left = self.left.execute()
        right = self.right.execute()
        if self.actuals is not None:
            self.actuals["build_rows"] = min(left.n, right.n)
            self.actuals["probe_rows"] = max(left.n, right.n)
        return _join_batches(left, right)

    def explain(self, depth: int = 0) -> List[str]:
        lines = [
            self._annotate(
                f"{'  ' * depth}BatchJoin est={self.cardinality:.0f}"
            )
        ]
        lines.extend(self.left.explain(depth + 1))
        lines.extend(self.right.explain(depth + 1))
        return lines


class BatchUnion(BatchOp):
    """Concatenate branch batches over the union schema.

    Branches missing a variable contribute ``UNBOUND`` columns.  No
    cross-branch deduplication happens here — batches carry bags and
    the result boundary deduplicates, so the solution *set* matches
    the row engine's ``UnionScan`` exactly.
    """

    def __init__(self, branches: Sequence[BatchOp]) -> None:
        self.branches = list(branches)
        out: Set[Variable] = set()
        for branch in self.branches:
            out.update(branch.variables)
        self.variables = frozenset(out)
        self.cardinality = sum(b.cardinality for b in self.branches)

    def children(self) -> Tuple[BatchOp, ...]:
        return tuple(self.branches)

    def _execute(self) -> Batch:
        batches = [branch.execute() for branch in self.branches]
        schema: List[Variable] = []
        seen: Set[Variable] = set()
        for batch in batches:
            for var in batch.schema:
                if var not in seen:
                    seen.add(var)
                    schema.append(var)
        cols: List[List[int]] = [[] for _ in schema]
        total = 0
        for batch in batches:
            total += batch.n
            for k, var in enumerate(schema):
                col = batch.col(var)
                if col is None:
                    cols[k].extend([UNBOUND] * batch.n)
                else:
                    cols[k].extend(col)
        return Batch(tuple(schema), cols, total)

    def explain(self, depth: int = 0) -> List[str]:
        lines = [
            self._annotate(
                f"{'  ' * depth}BatchUnion est={self.cardinality:.0f}"
            )
        ]
        for branch in self.branches:
            lines.extend(branch.explain(depth + 1))
        return lines


class BatchLeftJoin(BatchOp):
    """``OPTIONAL``: left rows extend with compatible right rows.

    Mirrors the row engine's ``LeftJoinOp``: each left row is extended
    by every compatible right row whose merged solution passes the
    embedded condition, and streams through padded with ``UNBOUND``
    when none does.
    """

    def __init__(
        self,
        left: BatchOp,
        right: BatchOp,
        mask: Optional[Callable[[Batch], _Mask]] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.mask = mask
        self.variables = left.variables | right.variables
        denominator = max(
            1.0,
            _BOUND_SELECTIVITY ** len(left.variables & right.variables),
        )
        self.cardinality = max(
            left.cardinality,
            min(left.cardinality * right.cardinality / denominator, 1e18),
        )

    def children(self) -> Tuple[BatchOp, ...]:
        return (self.left, self.right)

    def _execute(self) -> Batch:
        left = self.left.execute()
        right = self.right.execute()
        if self.actuals is not None:
            self.actuals["build_rows"] = right.n
        schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        if left.n == 0:
            return Batch.empty(schema)
        pad_width = len(schema) - len(left.schema)
        if right.n == 0:
            cols = [list(c) for c in left.columns]
            cols.extend([UNBOUND] * left.n for _ in range(pad_width))
            return Batch(schema, cols, left.n)
        pairs_l: List[int] = []
        pairs_r: List[int] = []
        shared = [v for v in left.schema if v in right.schema]
        lcols = [left.col(v) for v in shared]
        rcols = [right.col(v) for v in shared]
        strict = not any(UNBOUND in c for c in lcols) and not any(
            UNBOUND in c for c in rcols
        )
        if strict and shared:
            buckets: Dict[object, List[int]] = {}
            if len(shared) == 1:
                for j, key in enumerate(rcols[0]):
                    buckets.setdefault(key, []).append(j)
                probe_keys: Sequence[object] = lcols[0]
            else:
                for j, key in enumerate(zip(*rcols)):
                    buckets.setdefault(key, []).append(j)
                probe_keys = list(zip(*lcols))
            get = buckets.get
            for i, key in enumerate(probe_keys):
                js = get(key)
                if js:
                    pairs_r.extend(js)
                    pairs_l.extend([i] * len(js))
        else:
            left_rows = list(zip(*lcols)) if lcols else [()] * left.n
            right_rows = list(zip(*rcols)) if rcols else [()] * right.n
            for i, lkey in enumerate(left_rows):
                for j, rkey in enumerate(right_rows):
                    if all(
                        lv == rv or lv == UNBOUND or rv == UNBOUND
                        for lv, rv in zip(lkey, rkey)
                    ):
                        pairs_l.append(i)
                        pairs_r.append(j)
        # Build the merged candidate batch, shared cells filled from the
        # right when the left is unbound (possible under nested unions).
        merged_cols: List[List[int]] = []
        for var in schema:
            lcol = left.col(var)
            rcol = right.col(var)
            if lcol is None:
                merged_cols.append(list(map(rcol.__getitem__, pairs_r)))
            elif rcol is None or UNBOUND not in lcol:
                merged_cols.append(list(map(lcol.__getitem__, pairs_l)))
            else:
                merged_cols.append(
                    [
                        rcol[j] if lcol[i] == UNBOUND else lcol[i]
                        for i, j in zip(pairs_l, pairs_r)
                    ]
                )
        candidates = Batch(schema, merged_cols, len(pairs_l))
        if self.mask is not None and candidates.n:
            mask = self.mask(candidates)
            keep = [k for k, ok in enumerate(mask) if ok]
            matched = {pairs_l[k] for k in keep}
            candidates = candidates.gather(keep)
        else:
            matched = set(pairs_l)
        unmatched = [i for i in range(left.n) if i not in matched]
        if not unmatched:
            return candidates
        pads = left.gather(unmatched)
        out_cols = []
        for k, var in enumerate(schema):
            col = list(candidates.columns[k])
            pad_col = pads.col(var)
            if pad_col is None:
                col.extend([UNBOUND] * pads.n)
            else:
                col.extend(pad_col)
            out_cols.append(col)
        return Batch(schema, out_cols, candidates.n + pads.n)

    def explain(self, depth: int = 0) -> List[str]:
        cond = " cond" if self.mask is not None else ""
        lines = [
            self._annotate(
                f"{'  ' * depth}BatchLeftJoin{cond} "
                f"est={self.cardinality:.0f}"
            )
        ]
        lines.extend(self.left.explain(depth + 1))
        lines.extend(self.right.explain(depth + 1))
        return lines


class BatchFilter(BatchOp):
    """Vectorized FILTER: mask the child batch, gather survivors."""

    def __init__(
        self, child: BatchOp, mask: Callable[[Batch], _Mask]
    ) -> None:
        self.child = child
        self.mask = mask
        self.variables = child.variables
        self.cardinality = child.cardinality / 2.0

    def children(self) -> Tuple[BatchOp, ...]:
        return (self.child,)

    def _execute(self) -> Batch:
        batch = self.child.execute()
        if batch.n == 0:
            return batch
        mask = self.mask(batch)
        sel = [i for i, ok in enumerate(mask) if ok]
        if len(sel) == batch.n:
            return batch
        return batch.gather(sel)

    def explain(self, depth: int = 0) -> List[str]:
        lines = [
            self._annotate(
                f"{'  ' * depth}BatchFilter est={self.cardinality:.0f}"
            )
        ]
        lines.extend(self.child.explain(depth + 1))
        return lines


# ---------------------------------------------------------------------------
# Planner and entry points
# ---------------------------------------------------------------------------


def _flatten_joins(node: AlgebraNode, out: List[AlgebraNode]) -> None:
    if isinstance(node, Join):
        _flatten_joins(node.left, out)
        _flatten_joins(node.right, out)
    else:
        out.append(node)


def _order_operands(operands: List[BatchOp]) -> List[BatchOp]:
    """Greedy join order over operands — same policy as the row planner."""
    if len(operands) <= 1:
        return operands
    remaining = list(enumerate(operands))
    remaining.sort(key=lambda pair: (pair[1].cardinality, pair[0]))
    _, first = remaining.pop(0)
    ordered = [first]
    bound: Set[Variable] = set(first.variables)
    while remaining:
        connected = [p for p in remaining if p[1].variables & bound]
        if not connected:
            connected = remaining
        best = min(connected, key=lambda pair: (pair[1].cardinality, pair[0]))
        remaining.remove(best)
        ordered.append(best[1])
        bound.update(best[1].variables)
    return ordered


def build_batch_plan(graph: Graph, node: AlgebraNode) -> BatchOp:
    """Compile a logical algebra tree into a columnar batch plan."""
    sentinels: Dict[Term, int] = {}
    return _build(graph, node, sentinels)


def _build(
    graph: Graph, node: AlgebraNode, sentinels: Dict[Term, int]
) -> BatchOp:
    if isinstance(node, Bgp):
        if not node.patterns:
            return BatchSingleton()
        scan = BatchBgp(graph, node.patterns)
        if scan.compiled is None:
            return BatchEmpty(scan.variables)
        return scan
    if isinstance(node, Join):
        flat: List[AlgebraNode] = []
        _flatten_joins(node, flat)
        operands = [_build(graph, operand, sentinels) for operand in flat]
        ordered = _order_operands(operands)
        plan = ordered[0]
        for operand in ordered[1:]:
            probe, build = (
                (plan, operand)
                if plan.cardinality >= operand.cardinality
                else (operand, plan)
            )
            plan = BatchJoin(probe, build)
        return plan
    if isinstance(node, AlgebraUnion):
        branches: List[BatchOp] = []
        stack: List[AlgebraNode] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, AlgebraUnion):
                stack.append(current.right)
                stack.append(current.left)
            else:
                branches.append(_build(graph, current, sentinels))
        return BatchUnion(branches)
    if isinstance(node, LeftJoin):
        left = _build(graph, node.left, sentinels)
        right = _build(graph, node.right, sentinels)
        mask = (
            _compile_mask(graph, node.expr, sentinels)
            if node.expr is not None
            else None
        )
        return BatchLeftJoin(left, right, mask)
    if isinstance(node, Filter):
        child = _build(graph, node.child, sentinels)
        return BatchFilter(child, _compile_mask(graph, node.expr, sentinels))
    raise SparqlEvaluationError(f"unknown algebra node {node!r}")


def execute_batch(graph: Graph, node: AlgebraNode) -> Batch:
    """Build and execute the batch plan for a logical tree."""
    return build_batch_plan(graph, node).execute()


def select_id_batch(graph: Graph, node: AlgebraNode) -> Batch:
    """The full solution bag of a logical tree, as one batch."""
    return execute_batch(graph, node)


def select_id_rows_batch(
    graph: Graph, node: AlgebraNode, variables: Sequence[Variable]
) -> Set[_IDRow]:
    """Distinct projected ID rows — the batch twin of ``select_id_rows``."""
    return execute_batch(graph, node).id_rows(variables)


# ---------------------------------------------------------------------------
# Vectorized solution modifiers
# ---------------------------------------------------------------------------

_RowKeep = Optional[Callable[[_IDRow], bool]]


def batch_slice(
    batch: Batch,
    projected: Sequence[Variable],
    offset: int = 0,
    limit: Optional[int] = None,
    keep: _RowKeep = None,
) -> List[_IDRow]:
    """DISTINCT-project + OFFSET/LIMIT in batch order (no ORDER BY).

    First-seen deduplication over the batch's deterministic row order —
    the columnar analogue of the row engine's ``SliceOp``, whose output
    for un-ordered LIMIT queries depends on its *own* stream order, so
    the two engines agree on the row set but not necessarily on which
    slice of it a bare LIMIT returns.
    """
    if limit == 0:
        return []
    cols: List[Sequence[Optional[int]]] = []
    for var in projected:
        col = batch.col(var)
        if col is None:
            cols.append([None] * batch.n)
        elif UNBOUND in col:
            cols.append([None if c == UNBOUND else c for c in col])
        else:
            cols.append(col)  # type: ignore[arg-type]
    out: List[_IDRow] = []
    seen: Set[_IDRow] = set()
    skipped = 0
    iterator = zip(*cols) if cols else iter(() for _ in range(batch.n))
    for row in iterator:
        if keep is not None and not keep(row):
            continue
        if row in seen:
            continue
        seen.add(row)
        if skipped < offset:
            skipped += 1
            continue
        out.append(row)
        if limit is not None and len(out) >= limit:
            break
    return out


def batch_top_k(
    graph: Graph,
    batch: Batch,
    projected: Sequence[Variable],
    order: Sequence[OrderCondition],
    offset: int = 0,
    limit: Optional[int] = None,
    keep: _RowKeep = None,
) -> List[_IDRow]:
    """ORDER BY + DISTINCT-project + OFFSET/LIMIT over one batch.

    Deduplication keeps, per distinct projected row, the solution with
    the minimal :class:`~repro.sparql.plan.OrderKey`, and the canonical
    tiebreak makes the output a pure function of the solution *set* —
    identical to the row engine's ``TopKOp`` regardless of either
    engine's internal row order.
    """
    bound = None if limit is None else offset + limit
    if bound == 0:
        return []
    decode = graph.decode_id
    key_cache: Dict[int, Tuple] = {}

    def cell_key(tid: Optional[int]) -> Tuple:
        if tid is None:
            return (0,)
        cached = key_cache.get(tid)
        if cached is None:
            cached = (1,) + decode(tid).sort_key()
            key_cache[tid] = cached
        return cached

    def column(var: Variable) -> Sequence[Optional[int]]:
        col = batch.col(var)
        if col is None:
            return [None] * batch.n
        if UNBOUND in col:
            return [None if c == UNBOUND else c for c in col]
        return col  # type: ignore[return-value]

    flags = tuple(condition.descending for condition in order)
    proj_cols = [column(v) for v in projected]
    order_cols = [column(c.variable) for c in order]
    rows_iter = (
        zip(*proj_cols) if proj_cols else iter(() for _ in range(batch.n))
    )
    order_iter = (
        zip(*order_cols) if order_cols else iter(() for _ in range(batch.n))
    )
    best: Dict[_IDRow, OrderKey] = {}
    for row, order_row in zip(rows_iter, order_iter):
        if keep is not None and not keep(row):
            continue
        key = OrderKey(
            tuple(cell_key(cell) for cell in order_row),
            flags,
            tuple(cell_key(cell) for cell in row),
        )
        current = best.get(row)
        if current is None or key < current:
            best[row] = key
        if bound is not None and len(best) > 4 * bound:
            best = dict(
                heapq.nsmallest(bound, best.items(), key=lambda kv: kv[1])
            )
    ordered = sorted(best.items(), key=lambda kv: kv[1])
    sliced = ordered[offset:]
    if limit is not None:
        sliced = sliced[:limit]
    return [row for row, _ in sliced]
