"""Abstract syntax tree for the SPARQL conjunctive fragment.

The AST mirrors the grammar accepted by :mod:`repro.sparql.parser`:

* a query is ``SELECT`` (with projection, modifiers) or ``ASK``;
* the ``WHERE`` clause is a *group*: a sequence of triple patterns,
  nested groups, ``UNION`` alternatives, ``OPTIONAL`` extensions and
  ``FILTER`` constraints.

Nodes are immutable dataclasses; the algebra translation lives in
:mod:`repro.sparql.algebra`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple, Union

from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern

__all__ = [
    "Comparison",
    "BooleanExpr",
    "FilterExpr",
    "GroupPattern",
    "UnionPattern",
    "OptionalPattern",
    "PatternElement",
    "SelectQuery",
    "AskQuery",
    "Query",
    "OrderCondition",
]


@dataclass(frozen=True)
class Comparison:
    """An (in)equality test between two terms/variables."""

    left: Term
    op: str  # "=" or "!="
    right: Term

    def variables(self) -> FrozenSet[Variable]:
        out = set()
        for side in (self.left, self.right):
            if isinstance(side, Variable):
                out.add(side)
        return frozenset(out)


@dataclass(frozen=True)
class BooleanExpr:
    """Conjunction/disjunction of comparisons: ``expr (&&/||) expr``."""

    op: str  # "&&" or "||"
    left: "FilterExpr"
    right: "FilterExpr"

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()


FilterExpr = Union[Comparison, BooleanExpr]


@dataclass(frozen=True)
class UnionPattern:
    """``{...} UNION {...} UNION ...`` — two or more alternatives."""

    alternatives: Tuple["GroupPattern", ...]

    def variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for alt in self.alternatives:
            out.update(alt.variables())
        return frozenset(out)


@dataclass(frozen=True)
class OptionalPattern:
    """``OPTIONAL { ... }`` — a left-join extension of what precedes it.

    SPARQL semantics: solutions of the group so far are extended with
    compatible solutions of ``group`` where any exist and kept unchanged
    where none do (the algebra's ``LeftJoin``).
    """

    group: "GroupPattern"

    def variables(self) -> FrozenSet[Variable]:
        return self.group.variables()


PatternElement = Union[TriplePattern, "GroupPattern", UnionPattern,
                       OptionalPattern, Comparison, BooleanExpr]


@dataclass(frozen=True)
class GroupPattern:
    """A brace-delimited group: triple patterns, groups, unions, filters."""

    elements: Tuple[PatternElement, ...]

    def variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for element in self.elements:
            if isinstance(element, TriplePattern):
                out.update(element.variables())
            else:
                out.update(element.variables())
        return frozenset(out)

    def triple_patterns(self) -> List[TriplePattern]:
        """All triple patterns at this level (not inside nested groups)."""
        return [e for e in self.elements if isinstance(e, TriplePattern)]

    def is_conjunctive(self) -> bool:
        """True when the group is a pure BGP (no UNION/FILTER/nesting)."""
        return all(isinstance(e, TriplePattern) for e in self.elements)


@dataclass(frozen=True)
class OrderCondition:
    """One ``ORDER BY`` key."""

    variable: Variable
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A ``SELECT`` query.

    Attributes:
        variables: projected variables; empty tuple means ``SELECT *``.
        where: the WHERE group.
        distinct: ``SELECT DISTINCT`` (set semantics is the default in
            this library; DISTINCT only affects result *sequences*).
        reduced: ``SELECT REDUCED`` (treated as DISTINCT).
        order: ORDER BY conditions.
        limit / offset: result slicing; ``None`` means unbounded.
    """

    variables: Tuple[Variable, ...]
    where: GroupPattern
    distinct: bool = False
    reduced: bool = False
    order: Tuple[OrderCondition, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def is_star(self) -> bool:
        return not self.variables

    def projected(self) -> Tuple[Variable, ...]:
        """Projection list; for ``SELECT *``, all WHERE variables sorted."""
        if self.variables:
            return self.variables
        return tuple(sorted(self.where.variables(), key=lambda v: v.name))


@dataclass(frozen=True)
class AskQuery:
    """An ``ASK`` query (Boolean)."""

    where: GroupPattern


Query = Union[SelectQuery, AskQuery]
