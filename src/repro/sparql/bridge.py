"""Two-way translation between SPARQL and graph pattern queries.

The paper notes (end of Section 2.1) that the graph pattern query
language "can be seen as a conjunctive fragment of SPARQL, so a graph
pattern query can always be translated to a conjunctive SPARQL query and
vice versa".  This module is that translation:

* :func:`sparql_to_gpq` — SELECT/ASK with a pure-BGP WHERE clause becomes
  a :class:`~repro.gpq.query.GraphPatternQuery`;
* :func:`gpq_to_sparql` — render a graph pattern query as SPARQL text;
* :func:`sparql_union_to_gpqs` — a UNION of BGPs becomes a list of graph
  pattern queries (used by the rewriting output, which produces UCQs);
* :func:`sparql_to_branches` — the general form: any SELECT/ASK in the
  supported fragment (BGP + UNION + FILTER + OPTIONAL, arbitrarily
  nested) becomes a projection head plus a *union of conjunctive
  branches*, each branch a BGP with its FILTER constraints and a
  sequence of :class:`OptionalBlock` left-join extensions.  This is the
  shape the federated executor runs: UNION branches become independent
  per-endpoint sub-queries, branch filters are pushed into them, and
  optional blocks become federated ``LeftJoin`` operators evaluated
  after the required part.

``OPTIONAL`` is supported for *well-designed* patterns (Pérez et al.):
a variable occurring inside an optional group and outside it must also
occur in the group's required side.  Distributing joins over the left
side of a ``LeftJoin`` is exact only under that restriction, so
non-well-designed queries are rejected rather than silently answered
wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple, Union

from repro.errors import UnsupportedSparqlError
from repro.gpq.pattern import GraphPattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import (
    AlgebraNode,
    Bgp,
    Filter,
    Join,
    LeftJoin,
    translate_group,
)
from repro.sparql.algebra import Union as AlgebraUnion
from repro.sparql.ast import (
    AskQuery,
    BooleanExpr,
    Comparison,
    FilterExpr,
    GroupPattern,
    OptionalPattern,
    Query,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.parser import parse_query

__all__ = [
    "ConjunctiveBranch",
    "OptionalBlock",
    "sparql_to_gpq",
    "gpq_to_sparql",
    "sparql_union_to_gpqs",
    "sparql_to_branches",
]

#: Normalisation cap: a query whose disjunctive normal form exceeds this
#: many branches is rejected rather than silently exploding (each UNION
#: under a join multiplies branch counts).
MAX_BRANCHES = 64


def _flatten_bgp(group: GroupPattern) -> List:
    """Collect triple patterns from a group, recursing into plain groups.

    Raises:
        UnsupportedSparqlError: if the group contains UNION or FILTER.
    """
    patterns = []
    for element in group.elements:
        if isinstance(element, GroupPattern):
            patterns.extend(_flatten_bgp(element))
        elif isinstance(element, UnionPattern):
            raise UnsupportedSparqlError(
                "UNION cannot be translated to a single graph pattern query"
            )
        elif isinstance(element, OptionalPattern):
            raise UnsupportedSparqlError(
                "OPTIONAL cannot be translated to a graph pattern query"
            )
        elif hasattr(element, "op"):  # Comparison / BooleanExpr
            raise UnsupportedSparqlError(
                "FILTER cannot be translated to a graph pattern query"
            )
        else:
            patterns.append(element)
    return patterns


def sparql_to_gpq(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> GraphPatternQuery:
    """Translate a conjunctive SELECT/ASK query into a graph pattern query.

    SELECT's projection becomes the head; ASK becomes an arity-0 query.

    Raises:
        UnsupportedSparqlError: if the WHERE clause is not a pure BGP, or
            the query uses solution modifiers that have no GPQ equivalent
            (ORDER BY / LIMIT / OFFSET).
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        if ast.order or ast.limit is not None or ast.offset is not None:
            raise UnsupportedSparqlError(
                "ORDER BY/LIMIT/OFFSET have no graph-pattern-query equivalent"
            )
        patterns = _flatten_bgp(ast.where)
        if not patterns:
            raise UnsupportedSparqlError("empty WHERE clause")
        head = ast.projected()
        return GraphPatternQuery(head, GraphPattern.conjunction(patterns))
    if isinstance(ast, AskQuery):
        patterns = _flatten_bgp(ast.where)
        if not patterns:
            raise UnsupportedSparqlError("empty WHERE clause")
        return GraphPatternQuery((), GraphPattern.conjunction(patterns))
    raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")


def _render_term(term: Term, nsm: Optional[NamespaceManager]) -> str:
    if nsm is not None and isinstance(term, IRI):
        return nsm.display(term)
    return term.n3()


def gpq_to_sparql(
    query: GraphPatternQuery, nsm: Optional[NamespaceManager] = None
) -> str:
    """Render a graph pattern query as SPARQL text.

    Arity-0 queries render as ASK, others as SELECT.  The output parses
    back into an equivalent query (round-trip property-tested).
    """
    lines = []
    if nsm is not None:
        for prefix, namespace in nsm.namespaces():
            lines.append(f"PREFIX {prefix}: <{namespace}>")
    body_lines = [
        f"  {_render_term(tp.subject, nsm)} {_render_term(tp.predicate, nsm)} "
        f"{_render_term(tp.object, nsm)} ."
        for tp in query.conjuncts()
    ]
    if query.is_boolean():
        lines.append("ASK {")
    else:
        projection = " ".join(f"?{v.name}" for v in query.head)
        lines.append(f"SELECT {projection}")
        lines.append("WHERE {")
    lines.extend(body_lines)
    lines.append("}")
    return "\n".join(lines)


@dataclass(frozen=True)
class OptionalBlock:
    """One ``OPTIONAL`` extension attached to a conjunctive branch.

    Attributes:
        branches: the optional group normalised to its own union of
            conjunctive branches (a UNION inside OPTIONAL stays *inside*
            the block — left joins do not distribute over their right
            side).  Optional branches carry no nested optionals.
        expr: the optional group's top-level FILTER condition, evaluated
            on the *merged* row (required ∪ optional bindings), or
            ``None`` for unconditional extension.
    """

    branches: Tuple["ConjunctiveBranch", ...]
    expr: Optional[FilterExpr] = None

    def variables(self) -> FrozenSet[Variable]:
        """Variables the optional side itself can bind."""
        out: set = set()
        for branch in self.branches:
            out.update(branch.variables())
        return frozenset(out)

    def condition_variables(self) -> FrozenSet[Variable]:
        """Variables the block's LeftJoin condition mentions."""
        if self.expr is None:
            return frozenset()
        return frozenset(self.expr.variables())


@dataclass(frozen=True)
class ConjunctiveBranch:
    """One disjunct of a normalised WHERE clause.

    Attributes:
        patterns: the branch's required BGP (conjunction of patterns).
        filters: FILTER expressions scoped to this branch.  A filter
            mentioning a variable the branch never binds keeps SPARQL's
            error semantics: the comparison evaluates to false.  A
            filter mentioning an optional variable is decidable only
            after the optional extension ran.
        optionals: left-join extensions applied, in order, after the
            required part (and before filters that need their
            variables).
    """

    patterns: Tuple[TriplePattern, ...]
    filters: Tuple[FilterExpr, ...] = ()
    optionals: Tuple[OptionalBlock, ...] = ()

    def required_variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for tp in self.patterns:
            out.update(tp.variables())
        return frozenset(out)

    def variables(self) -> FrozenSet[Variable]:
        out: set = set(self.required_variables())
        for block in self.optionals:
            out.update(block.variables())
        return frozenset(out)


def _specialize(expr: FilterExpr, scope: FrozenSet[Variable]):
    """Specialise a filter to the variables its group can ever bind.

    SPARQL filters scope to their group: a comparison over a variable
    the group never binds evaluates under an unbound variable and
    error-collapses to false — even if an *enclosing* group later binds
    the variable through a join.  This rewrite bakes that in before the
    filter leaves its group during normalisation: out-of-scope
    comparisons become constant false and the boolean structure is
    simplified.  Returns ``False`` when the whole filter is statically
    false (the branch is empty), else a (possibly smaller) expression.
    """
    if isinstance(expr, Comparison):
        for side in (expr.left, expr.right):
            if isinstance(side, Variable) and side not in scope:
                return False
        return expr
    assert isinstance(expr, BooleanExpr)
    left = _specialize(expr.left, scope)
    right = _specialize(expr.right, scope)
    if expr.op == "&&":
        if left is False or right is False:
            return False
    else:  # "||"
        if left is False:
            return right
        if right is False:
            return left
    if left is expr.left and right is expr.right:
        return expr
    return BooleanExpr(expr.op, left, right)


def _dnf(node: AlgebraNode) -> List[ConjunctiveBranch]:
    """Distribute joins and filters over unions: the DNF of the algebra.

    Exact under set semantics — ``(A UNION B) JOIN C`` equals
    ``(A JOIN C) UNION (B JOIN C)`` and filters distribute over both —
    which the pushdown test suite asserts against the single-graph
    planner on randomized workloads.  Filters are specialised to their
    group's variable scope before they attach to a branch (see
    :func:`_specialize`), so group-scoped unbound-variable semantics
    survive the flattening.
    """
    if isinstance(node, Bgp):
        return [ConjunctiveBranch(node.patterns)]
    if isinstance(node, Join):
        left = _dnf(node.left)
        right = _dnf(node.right)
        if len(left) * len(right) > MAX_BRANCHES:
            raise UnsupportedSparqlError(
                f"query normalises to more than {MAX_BRANCHES} conjunctive "
                "branches"
            )
        out = []
        for lhs in left:
            for rhs in right:
                _check_well_designed(lhs, rhs)
                _check_well_designed(rhs, lhs)
                out.append(
                    ConjunctiveBranch(
                        lhs.patterns + rhs.patterns,
                        lhs.filters + rhs.filters,
                        lhs.optionals + rhs.optionals,
                    )
                )
        return out
    if isinstance(node, AlgebraUnion):
        return _dnf(node.left) + _dnf(node.right)
    if isinstance(node, LeftJoin):
        left = _dnf(node.left)
        right = _dnf(node.right)
        if len(right) > MAX_BRANCHES:
            raise UnsupportedSparqlError(
                f"OPTIONAL group normalises to more than {MAX_BRANCHES} "
                "conjunctive branches"
            )
        for branch in right:
            if branch.optionals:
                raise UnsupportedSparqlError(
                    "nested OPTIONAL is outside the supported fragment"
                )
        block = OptionalBlock(tuple(right), node.expr)
        # LeftJoin distributes over a UNION on its *left* side (each
        # solution of the union extends independently), so each left
        # branch carries its own copy of the block.
        return [
            ConjunctiveBranch(
                lhs.patterns, lhs.filters, lhs.optionals + (block,)
            )
            for lhs in left
        ]
    if isinstance(node, Filter):
        out = []
        for branch in _dnf(node.child):
            expr = _specialize(node.expr, branch.variables())
            if expr is False:
                continue  # statically false: the branch yields nothing
            out.append(
                ConjunctiveBranch(
                    branch.patterns, branch.filters + (expr,), branch.optionals
                )
            )
        return out
    raise UnsupportedSparqlError(f"cannot normalise {type(node).__name__}")


def _check_well_designed(
    lhs: ConjunctiveBranch, rhs: ConjunctiveBranch
) -> None:
    """Reject a join that would break ``lhs``'s optional blocks.

    Evaluating a branch's optionals after its whole required join is
    exact only when the pattern is *well-designed*: a variable occurring
    inside an optional block — in its patterns *or* its hoisted FILTER
    condition — and not bound by the block's own required side may not
    also occur in the other join operand (``Join(LeftJoin(A, B), C)``
    equals ``LeftJoin(Join(A, C), B)`` only when
    ``var(B) ∩ var(C) ⊆ var(A)``).  The condition variables matter
    because the algebra evaluates the condition *at* the inner LeftJoin,
    where a variable the outer join would later bind is still unbound
    (error-collapsing the comparison to false).
    """
    required = lhs.required_variables()
    other = set(rhs.variables())
    for block in rhs.optionals:
        other |= block.condition_variables()
    for block in lhs.optionals:
        block_vars = block.variables() | block.condition_variables()
        leaked = (block_vars - required) & other
        if leaked:
            names = ", ".join(sorted(f"?{v.name}" for v in leaked))
            raise UnsupportedSparqlError(
                f"OPTIONAL pattern is not well-designed: {names} occur(s) "
                "inside an optional group and in a pattern joined from "
                "outside it"
            )


def sparql_to_branches(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> Tuple[Tuple[Variable, ...], List[ConjunctiveBranch]]:
    """Normalise a SELECT/ASK query into ``(head, conjunctive branches)``.

    The union of the branches (each a BGP plus its filters, projected on
    ``head``) has exactly the query's answer set; a branch that does not
    bind a head variable leaves its cell unbound (``None`` in projected
    rows), matching the single-graph planner.

    Solution modifiers (ORDER BY/LIMIT/OFFSET) are *not* applied here —
    branches describe the WHERE clause only.  The federated executor
    reads the modifiers off the AST itself and applies them through its
    demand-aware operator layer (:mod:`repro.federation.plan`).

    Raises:
        UnsupportedSparqlError: for non-SELECT/ASK queries, queries
            whose DNF exceeds :data:`MAX_BRANCHES`, nested OPTIONAL, or
            non-well-designed OPTIONAL patterns.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        head = ast.projected()
        where = ast.where
    elif isinstance(ast, AskQuery):
        head = ()
        where = ast.where
    else:
        raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")
    branches = _dnf(translate_group(where))
    if len(branches) > MAX_BRANCHES:
        raise UnsupportedSparqlError(
            f"query normalises to more than {MAX_BRANCHES} conjunctive "
            "branches"
        )
    # Drop exact duplicates (a UNION of identical groups is legal SPARQL).
    seen = set()
    unique: List[ConjunctiveBranch] = []
    for branch in branches:
        if branch not in seen:
            seen.add(branch)
            unique.append(branch)
    return head, unique


def sparql_union_to_gpqs(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> List[GraphPatternQuery]:
    """Translate a (possibly UNION-of-BGPs) query into a list of GPQs.

    A query whose WHERE clause is a top-level UNION of conjunctive groups
    — the shape produced by the Proposition-2 rewriting — maps to one
    graph pattern query per alternative, all with the same head.

    Raises:
        UnsupportedSparqlError: for any other non-conjunctive structure.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        where = ast.where
        head = ast.projected()
    elif isinstance(ast, AskQuery):
        where = ast.where
        head = ()
    else:
        raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")

    if len(where.elements) == 1 and isinstance(where.elements[0], UnionPattern):
        union = where.elements[0]
        out = []
        for alternative in union.alternatives:
            patterns = _flatten_bgp(alternative)
            if not patterns:
                raise UnsupportedSparqlError("empty UNION alternative")
            usable_head = tuple(
                v for v in head
                if v in GraphPattern.conjunction(patterns).variables()
            )
            out.append(
                GraphPatternQuery(usable_head, GraphPattern.conjunction(patterns))
            )
        return out
    return [sparql_to_gpq(ast, nsm)]
