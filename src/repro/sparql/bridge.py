"""Two-way translation between SPARQL and graph pattern queries.

The paper notes (end of Section 2.1) that the graph pattern query
language "can be seen as a conjunctive fragment of SPARQL, so a graph
pattern query can always be translated to a conjunctive SPARQL query and
vice versa".  This module is that translation:

* :func:`sparql_to_gpq` — SELECT/ASK with a pure-BGP WHERE clause becomes
  a :class:`~repro.gpq.query.GraphPatternQuery`;
* :func:`gpq_to_sparql` — render a graph pattern query as SPARQL text;
* :func:`sparql_union_to_gpqs` — a UNION of BGPs becomes a list of graph
  pattern queries (used by the rewriting output, which produces UCQs);
* :func:`sparql_to_branches` — the general form: any SELECT/ASK in the
  supported fragment (BGP + UNION + FILTER, arbitrarily nested) becomes
  a projection head plus a *union of conjunctive branches*, each branch
  a BGP with its FILTER constraints.  This is the shape the federated
  executor runs: UNION branches become independent per-endpoint
  sub-queries and branch filters are pushed into them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple, Union

from repro.errors import UnsupportedSparqlError
from repro.gpq.pattern import GraphPattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import (
    AlgebraNode,
    Bgp,
    Filter,
    Join,
    translate_group,
)
from repro.sparql.algebra import Union as AlgebraUnion
from repro.sparql.ast import (
    AskQuery,
    BooleanExpr,
    Comparison,
    FilterExpr,
    GroupPattern,
    Query,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.parser import parse_query

__all__ = [
    "ConjunctiveBranch",
    "sparql_to_gpq",
    "gpq_to_sparql",
    "sparql_union_to_gpqs",
    "sparql_to_branches",
]

#: Normalisation cap: a query whose disjunctive normal form exceeds this
#: many branches is rejected rather than silently exploding (each UNION
#: under a join multiplies branch counts).
MAX_BRANCHES = 64


def _flatten_bgp(group: GroupPattern) -> List:
    """Collect triple patterns from a group, recursing into plain groups.

    Raises:
        UnsupportedSparqlError: if the group contains UNION or FILTER.
    """
    patterns = []
    for element in group.elements:
        if isinstance(element, GroupPattern):
            patterns.extend(_flatten_bgp(element))
        elif isinstance(element, UnionPattern):
            raise UnsupportedSparqlError(
                "UNION cannot be translated to a single graph pattern query"
            )
        elif hasattr(element, "op"):  # Comparison / BooleanExpr
            raise UnsupportedSparqlError(
                "FILTER cannot be translated to a graph pattern query"
            )
        else:
            patterns.append(element)
    return patterns


def sparql_to_gpq(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> GraphPatternQuery:
    """Translate a conjunctive SELECT/ASK query into a graph pattern query.

    SELECT's projection becomes the head; ASK becomes an arity-0 query.

    Raises:
        UnsupportedSparqlError: if the WHERE clause is not a pure BGP, or
            the query uses solution modifiers that have no GPQ equivalent
            (ORDER BY / LIMIT / OFFSET).
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        if ast.order or ast.limit is not None or ast.offset is not None:
            raise UnsupportedSparqlError(
                "ORDER BY/LIMIT/OFFSET have no graph-pattern-query equivalent"
            )
        patterns = _flatten_bgp(ast.where)
        if not patterns:
            raise UnsupportedSparqlError("empty WHERE clause")
        head = ast.projected()
        return GraphPatternQuery(head, GraphPattern.conjunction(patterns))
    if isinstance(ast, AskQuery):
        patterns = _flatten_bgp(ast.where)
        if not patterns:
            raise UnsupportedSparqlError("empty WHERE clause")
        return GraphPatternQuery((), GraphPattern.conjunction(patterns))
    raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")


def _render_term(term: Term, nsm: Optional[NamespaceManager]) -> str:
    if nsm is not None and isinstance(term, IRI):
        return nsm.display(term)
    return term.n3()


def gpq_to_sparql(
    query: GraphPatternQuery, nsm: Optional[NamespaceManager] = None
) -> str:
    """Render a graph pattern query as SPARQL text.

    Arity-0 queries render as ASK, others as SELECT.  The output parses
    back into an equivalent query (round-trip property-tested).
    """
    lines = []
    if nsm is not None:
        for prefix, namespace in nsm.namespaces():
            lines.append(f"PREFIX {prefix}: <{namespace}>")
    body_lines = [
        f"  {_render_term(tp.subject, nsm)} {_render_term(tp.predicate, nsm)} "
        f"{_render_term(tp.object, nsm)} ."
        for tp in query.conjuncts()
    ]
    if query.is_boolean():
        lines.append("ASK {")
    else:
        projection = " ".join(f"?{v.name}" for v in query.head)
        lines.append(f"SELECT {projection}")
        lines.append("WHERE {")
    lines.extend(body_lines)
    lines.append("}")
    return "\n".join(lines)


@dataclass(frozen=True)
class ConjunctiveBranch:
    """One disjunct of a normalised WHERE clause.

    Attributes:
        patterns: the branch's BGP (conjunction of triple patterns).
        filters: FILTER expressions scoped to this branch.  A filter
            mentioning a variable the branch never binds keeps SPARQL's
            error semantics: the comparison evaluates to false.
    """

    patterns: Tuple[TriplePattern, ...]
    filters: Tuple[FilterExpr, ...] = ()

    def variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for tp in self.patterns:
            out.update(tp.variables())
        return frozenset(out)


def _specialize(expr: FilterExpr, scope: FrozenSet[Variable]):
    """Specialise a filter to the variables its group can ever bind.

    SPARQL filters scope to their group: a comparison over a variable
    the group never binds evaluates under an unbound variable and
    error-collapses to false — even if an *enclosing* group later binds
    the variable through a join.  This rewrite bakes that in before the
    filter leaves its group during normalisation: out-of-scope
    comparisons become constant false and the boolean structure is
    simplified.  Returns ``False`` when the whole filter is statically
    false (the branch is empty), else a (possibly smaller) expression.
    """
    if isinstance(expr, Comparison):
        for side in (expr.left, expr.right):
            if isinstance(side, Variable) and side not in scope:
                return False
        return expr
    assert isinstance(expr, BooleanExpr)
    left = _specialize(expr.left, scope)
    right = _specialize(expr.right, scope)
    if expr.op == "&&":
        if left is False or right is False:
            return False
    else:  # "||"
        if left is False:
            return right
        if right is False:
            return left
    if left is expr.left and right is expr.right:
        return expr
    return BooleanExpr(expr.op, left, right)


def _dnf(node: AlgebraNode) -> List[ConjunctiveBranch]:
    """Distribute joins and filters over unions: the DNF of the algebra.

    Exact under set semantics — ``(A UNION B) JOIN C`` equals
    ``(A JOIN C) UNION (B JOIN C)`` and filters distribute over both —
    which the pushdown test suite asserts against the single-graph
    planner on randomized workloads.  Filters are specialised to their
    group's variable scope before they attach to a branch (see
    :func:`_specialize`), so group-scoped unbound-variable semantics
    survive the flattening.
    """
    if isinstance(node, Bgp):
        return [ConjunctiveBranch(node.patterns)]
    if isinstance(node, Join):
        left = _dnf(node.left)
        right = _dnf(node.right)
        if len(left) * len(right) > MAX_BRANCHES:
            raise UnsupportedSparqlError(
                f"query normalises to more than {MAX_BRANCHES} conjunctive "
                "branches"
            )
        return [
            ConjunctiveBranch(
                lhs.patterns + rhs.patterns, lhs.filters + rhs.filters
            )
            for lhs in left
            for rhs in right
        ]
    if isinstance(node, AlgebraUnion):
        return _dnf(node.left) + _dnf(node.right)
    if isinstance(node, Filter):
        out = []
        for branch in _dnf(node.child):
            expr = _specialize(node.expr, branch.variables())
            if expr is False:
                continue  # statically false: the branch yields nothing
            out.append(
                ConjunctiveBranch(branch.patterns, branch.filters + (expr,))
            )
        return out
    raise UnsupportedSparqlError(f"cannot normalise {type(node).__name__}")


def sparql_to_branches(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> Tuple[Tuple[Variable, ...], List[ConjunctiveBranch]]:
    """Normalise a SELECT/ASK query into ``(head, conjunctive branches)``.

    The union of the branches (each a BGP plus its filters, projected on
    ``head``) has exactly the query's answer set; a branch that does not
    bind a head variable leaves its cell unbound (``None`` in projected
    rows), matching the single-graph planner.

    Raises:
        UnsupportedSparqlError: for non-SELECT/ASK queries, solution
            modifiers (ORDER BY/LIMIT/OFFSET), or queries whose DNF
            exceeds :data:`MAX_BRANCHES`.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        if ast.order or ast.limit is not None or ast.offset is not None:
            raise UnsupportedSparqlError(
                "ORDER BY/LIMIT/OFFSET are not supported in federated "
                "execution"
            )
        head = ast.projected()
        where = ast.where
    elif isinstance(ast, AskQuery):
        head = ()
        where = ast.where
    else:
        raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")
    branches = _dnf(translate_group(where))
    if len(branches) > MAX_BRANCHES:
        raise UnsupportedSparqlError(
            f"query normalises to more than {MAX_BRANCHES} conjunctive "
            "branches"
        )
    # Drop exact duplicates (a UNION of identical groups is legal SPARQL).
    seen = set()
    unique: List[ConjunctiveBranch] = []
    for branch in branches:
        if branch not in seen:
            seen.add(branch)
            unique.append(branch)
    return head, unique


def sparql_union_to_gpqs(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> List[GraphPatternQuery]:
    """Translate a (possibly UNION-of-BGPs) query into a list of GPQs.

    A query whose WHERE clause is a top-level UNION of conjunctive groups
    — the shape produced by the Proposition-2 rewriting — maps to one
    graph pattern query per alternative, all with the same head.

    Raises:
        UnsupportedSparqlError: for any other non-conjunctive structure.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        where = ast.where
        head = ast.projected()
    elif isinstance(ast, AskQuery):
        where = ast.where
        head = ()
    else:
        raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")

    if len(where.elements) == 1 and isinstance(where.elements[0], UnionPattern):
        union = where.elements[0]
        out = []
        for alternative in union.alternatives:
            patterns = _flatten_bgp(alternative)
            if not patterns:
                raise UnsupportedSparqlError("empty UNION alternative")
            usable_head = tuple(
                v for v in head
                if v in GraphPattern.conjunction(patterns).variables()
            )
            out.append(
                GraphPatternQuery(usable_head, GraphPattern.conjunction(patterns))
            )
        return out
    return [sparql_to_gpq(ast, nsm)]
