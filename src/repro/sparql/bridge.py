"""Two-way translation between SPARQL and graph pattern queries.

The paper notes (end of Section 2.1) that the graph pattern query
language "can be seen as a conjunctive fragment of SPARQL, so a graph
pattern query can always be translated to a conjunctive SPARQL query and
vice versa".  This module is that translation:

* :func:`sparql_to_gpq` — SELECT/ASK with a pure-BGP WHERE clause becomes
  a :class:`~repro.gpq.query.GraphPatternQuery`;
* :func:`gpq_to_sparql` — render a graph pattern query as SPARQL text;
* :func:`sparql_union_to_gpqs` — a UNION of BGPs becomes a list of graph
  pattern queries (used by the rewriting output, which produces UCQs).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import UnsupportedSparqlError
from repro.gpq.pattern import GraphPattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term
from repro.sparql.ast import (
    AskQuery,
    GroupPattern,
    Query,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.parser import parse_query

__all__ = ["sparql_to_gpq", "gpq_to_sparql", "sparql_union_to_gpqs"]


def _flatten_bgp(group: GroupPattern) -> List:
    """Collect triple patterns from a group, recursing into plain groups.

    Raises:
        UnsupportedSparqlError: if the group contains UNION or FILTER.
    """
    patterns = []
    for element in group.elements:
        if isinstance(element, GroupPattern):
            patterns.extend(_flatten_bgp(element))
        elif isinstance(element, UnionPattern):
            raise UnsupportedSparqlError(
                "UNION cannot be translated to a single graph pattern query"
            )
        elif hasattr(element, "op"):  # Comparison / BooleanExpr
            raise UnsupportedSparqlError(
                "FILTER cannot be translated to a graph pattern query"
            )
        else:
            patterns.append(element)
    return patterns


def sparql_to_gpq(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> GraphPatternQuery:
    """Translate a conjunctive SELECT/ASK query into a graph pattern query.

    SELECT's projection becomes the head; ASK becomes an arity-0 query.

    Raises:
        UnsupportedSparqlError: if the WHERE clause is not a pure BGP, or
            the query uses solution modifiers that have no GPQ equivalent
            (ORDER BY / LIMIT / OFFSET).
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        if ast.order or ast.limit is not None or ast.offset is not None:
            raise UnsupportedSparqlError(
                "ORDER BY/LIMIT/OFFSET have no graph-pattern-query equivalent"
            )
        patterns = _flatten_bgp(ast.where)
        if not patterns:
            raise UnsupportedSparqlError("empty WHERE clause")
        head = ast.projected()
        return GraphPatternQuery(head, GraphPattern.conjunction(patterns))
    if isinstance(ast, AskQuery):
        patterns = _flatten_bgp(ast.where)
        if not patterns:
            raise UnsupportedSparqlError("empty WHERE clause")
        return GraphPatternQuery((), GraphPattern.conjunction(patterns))
    raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")


def _render_term(term: Term, nsm: Optional[NamespaceManager]) -> str:
    if nsm is not None and isinstance(term, IRI):
        return nsm.display(term)
    return term.n3()


def gpq_to_sparql(
    query: GraphPatternQuery, nsm: Optional[NamespaceManager] = None
) -> str:
    """Render a graph pattern query as SPARQL text.

    Arity-0 queries render as ASK, others as SELECT.  The output parses
    back into an equivalent query (round-trip property-tested).
    """
    lines = []
    if nsm is not None:
        for prefix, namespace in nsm.namespaces():
            lines.append(f"PREFIX {prefix}: <{namespace}>")
    body_lines = [
        f"  {_render_term(tp.subject, nsm)} {_render_term(tp.predicate, nsm)} "
        f"{_render_term(tp.object, nsm)} ."
        for tp in query.conjuncts()
    ]
    if query.is_boolean():
        lines.append("ASK {")
    else:
        projection = " ".join(f"?{v.name}" for v in query.head)
        lines.append(f"SELECT {projection}")
        lines.append("WHERE {")
    lines.extend(body_lines)
    lines.append("}")
    return "\n".join(lines)


def sparql_union_to_gpqs(
    query: Union[str, Query], nsm: Optional[NamespaceManager] = None
) -> List[GraphPatternQuery]:
    """Translate a (possibly UNION-of-BGPs) query into a list of GPQs.

    A query whose WHERE clause is a top-level UNION of conjunctive groups
    — the shape produced by the Proposition-2 rewriting — maps to one
    graph pattern query per alternative, all with the same head.

    Raises:
        UnsupportedSparqlError: for any other non-conjunctive structure.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        where = ast.where
        head = ast.projected()
    elif isinstance(ast, AskQuery):
        where = ast.where
        head = ()
    else:
        raise UnsupportedSparqlError(f"cannot translate {type(ast).__name__}")

    if len(where.elements) == 1 and isinstance(where.elements[0], UnionPattern):
        union = where.elements[0]
        out = []
        for alternative in union.alternatives:
            patterns = _flatten_bgp(alternative)
            if not patterns:
                raise UnsupportedSparqlError("empty UNION alternative")
            usable_head = tuple(
                v for v in head
                if v in GraphPattern.conjunction(patterns).variables()
            )
            out.append(
                GraphPatternQuery(usable_head, GraphPattern.conjunction(patterns))
            )
        return out
    return [sparql_to_gpq(ast, nsm)]
