"""SPARQL front-end for the conjunctive fragment (plus UNION/FILTER).

Lexer, recursive-descent parser, algebra, ID-native physical planner and
executor (:mod:`repro.sparql.plan`), result classes, and the bridge to
the paper's graph pattern query language.  The engine evaluates under
set semantics, matching Section 2.1.
"""

from repro.sparql.ast import (
    AskQuery,
    BooleanExpr,
    Comparison,
    GroupPattern,
    OrderCondition,
    Query,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.bridge import gpq_to_sparql, sparql_to_gpq, sparql_union_to_gpqs
from repro.sparql.engine import ask_text, execute, select
from repro.sparql.parser import parse_query
from repro.sparql.plan import build_plan, explain_plan
from repro.sparql.results import AskResult, SelectResult

__all__ = [
    "AskQuery",
    "AskResult",
    "BooleanExpr",
    "Comparison",
    "GroupPattern",
    "OrderCondition",
    "Query",
    "SelectQuery",
    "SelectResult",
    "UnionPattern",
    "ask_text",
    "build_plan",
    "execute",
    "explain_plan",
    "gpq_to_sparql",
    "parse_query",
    "select",
    "sparql_to_gpq",
    "sparql_union_to_gpqs",
]
