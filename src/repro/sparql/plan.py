"""ID-native physical plans for the SPARQL algebra.

:mod:`repro.sparql.algebra` defines the logical operators and a naive
term-level evaluator that materialises full sets of
:class:`~repro.gpq.bindings.SolutionMapping` at every node.  This module
is the production execution path: the logical tree is compiled into a
tree of *streaming* physical operators whose solutions are plain
``{Variable: int}`` dictionaries over the graph's term-dictionary IDs.
Only the final projected rows are decoded back into terms.

Physical operators:

* :class:`BgpScan` — index-nested-loop join over one basic graph
  pattern, with cost-based conjunct ordering driven by the per-index
  counts of :meth:`repro.rdf.graph.Graph.count_ids`;
* :class:`HashJoin` — builds a hash table on the lower-cardinality
  side keyed by the shared variables and streams the other side
  (falling back to a nested loop when UNION branches make binding
  domains heterogeneous);
* :class:`UnionScan` — streams each branch, deduplicating on the fly;
* :class:`LeftJoinOp` — the ``OPTIONAL`` construct: left rows extend
  with compatible right rows where any pass the embedded condition and
  stream through unchanged where none do;
* :class:`FilterScan` — evaluates FILTER expressions entirely on IDs
  (ground comparison terms are resolved to IDs at compile time;
  constants absent from the dictionary get fresh sentinel IDs that can
  never collide with data).

The planner (:func:`build_plan`) additionally reorders *join operands*
— flattening left-deep ``Join`` chains and greedily joining the
cheapest connected operand next — so cross products are only formed
when the query itself is disconnected.

Every plan produces exactly the solution set of the reference
evaluator (:func:`repro.sparql.algebra.evaluate_algebra`); the test
suite asserts this equivalence on randomized workloads.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import SparqlEvaluationError
from repro.gpq.evaluation import compile_conjunct, extend_id_bindings
from repro.obs.analyze import format_actuals
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.algebra import AlgebraNode, Bgp, Filter, Join, LeftJoin
from repro.sparql.algebra import Union as AlgebraUnion
from repro.sparql.ast import (
    BooleanExpr,
    Comparison,
    FilterExpr,
    OrderCondition,
)

__all__ = [
    "PhysicalOp",
    "BgpScan",
    "HashJoin",
    "UnionScan",
    "LeftJoinOp",
    "FilterScan",
    "EmptyScan",
    "SingletonScan",
    "SliceOp",
    "TopKOp",
    "OrderKey",
    "compile_filter",
    "plan_bgp",
    "build_plan",
    "explain_plan",
    "evaluate_plan",
    "select_id_rows",
    "select_rows",
]

#: A compiled conjunct position: an integer ID or a still-free Variable.
_Slot = Union[int, Variable]

#: A streaming solution: variable -> integer term ID.
_IDBinding = Dict[Variable, int]

#: A BGP's compiled conjuncts, or None when one is unsatisfiable.
_CompiledBgp = Optional[List[Tuple[_Slot, _Slot, _Slot]]]

#: Selectivity credit for a variable position that will be bound (to an
#: unknown value) by the time a conjunct runs: its index count is divided
#: by this per bound position.  Any constant > 1 gives the right *shape*
#: of preference; 8 keeps estimates integral-ish without overflow games.
_BOUND_SELECTIVITY = 8.0


class PhysicalOp:
    """Base class: a streaming operator over ID bindings.

    Attributes:
        variables: the variables this operator *may* bind.
        binds_all: True when every produced binding is total on
            ``variables`` (lets joins use the pure hash path).
        cardinality: planner's rough output-size estimate.
        actuals: EXPLAIN ANALYZE counters, attached per node by
            :func:`repro.obs.analyze.attach_actuals`; the class-level
            ``None`` means analysis is off and ``execute`` forwards to
            the operator's ``_execute`` with zero per-row overhead.
    """

    variables: FrozenSet[Variable] = frozenset()
    binds_all: bool = True
    cardinality: float = 1.0
    actuals: Optional[Dict[str, int]] = None

    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def _execute(self) -> Iterator[_IDBinding]:
        raise NotImplementedError

    def execute(self) -> Iterator[_IDBinding]:
        if self.actuals is None:
            return self._execute()
        return self._counted()

    def _counted(self) -> Iterator[_IDBinding]:
        """The analyzed path: stream ``_execute`` counting rows out."""
        actuals = self.actuals
        actuals["calls"] = actuals.get("calls", 0) + 1
        produced = actuals.get("rows_out", 0)
        actuals["rows_out"] = produced
        for binding in self._execute():
            produced += 1
            actuals["rows_out"] = produced
            yield binding

    def _annotate(self, line: str) -> str:
        """Append the actuals note to one explain line (analyze mode)."""
        return f"{line}{format_actuals(self.actuals)}"

    def explain(self, depth: int = 0) -> List[str]:
        raise NotImplementedError


class EmptyScan(PhysicalOp):
    """Produces nothing — a pattern that provably cannot match."""

    def __init__(
        self, variables: FrozenSet[Variable], reason: str = ""
    ) -> None:
        self.variables = variables
        self.cardinality = 0.0
        self.reason = reason

    def _execute(self) -> Iterator[_IDBinding]:
        return iter(())

    def explain(self, depth: int = 0) -> List[str]:
        note = f" ({self.reason})" if self.reason else ""
        return [self._annotate(f"{'  ' * depth}Empty{note}")]


class SingletonScan(PhysicalOp):
    """Produces the single empty binding — an empty group pattern."""

    def _execute(self) -> Iterator[_IDBinding]:
        yield {}

    def explain(self, depth: int = 0) -> List[str]:
        return [self._annotate(f"{'  ' * depth}Singleton")]


class BgpScan(PhysicalOp):
    """Index-nested-loop join over one BGP's conjuncts.

    Conjuncts are ordered greedily at build time: the next conjunct is
    the one with the smallest estimated extension count given the
    variables bound so far, where the estimate is the exact per-index
    count of the conjunct's ground positions discounted for
    already-bound variable positions.
    """

    def __init__(
        self, graph: Graph, patterns: Sequence[TriplePattern]
    ) -> None:
        self.graph = graph
        out: Set[Variable] = set()
        for tp in patterns:
            out.update(tp.variables())
        self.variables = frozenset(out)
        self.ordered, self.compiled, self.cardinality = self._plan(
            graph, list(patterns)
        )

    @staticmethod
    def _estimate(
        graph: Graph, slots: Tuple[_Slot, _Slot, _Slot], bound: Set[Variable]
    ) -> Tuple[float, int]:
        """(estimated extensions, free-variable count) for one conjunct."""
        args: List[Optional[int]] = [None, None, None]
        discount = 1.0
        free = 0
        for pos, slot in enumerate(slots):
            if isinstance(slot, int):
                args[pos] = slot
            elif slot in bound:
                discount *= _BOUND_SELECTIVITY
            else:
                free += 1
        count = graph.count_ids(args[0], args[1], args[2])
        return (count / discount, free)

    @classmethod
    def _plan(
        cls, graph: Graph, patterns: List[TriplePattern]
    ) -> Tuple[List[TriplePattern], "_CompiledBgp", float]:
        compiled: List[Optional[Tuple[_Slot, _Slot, _Slot]]] = []
        for tp in patterns:
            compiled.append(compile_conjunct(graph, tp))
        if any(slots is None for slots in compiled):
            return (patterns, None, 0.0)
        remaining = list(range(len(patterns)))
        order: List[int] = []
        bound: Set[Variable] = set()
        total = 1.0
        while remaining:
            best = min(
                remaining,
                key=lambda i: cls._estimate(graph, compiled[i], bound) + (i,),
            )
            remaining.remove(best)
            order.append(best)
            estimate, _ = cls._estimate(graph, compiled[best], bound)
            total = min(total * max(estimate, 1.0), 1e18)
            bound.update(patterns[best].variables())
        ordered = [patterns[i] for i in order]
        slots = [compiled[i] for i in order]
        return (ordered, slots, total)  # type: ignore[return-value]

    def _execute(self) -> Iterator[_IDBinding]:
        if self.compiled is None:
            return iter(())
        return self._scan(0, {})

    def _scan(self, index: int, partial: _IDBinding) -> Iterator[_IDBinding]:
        if index == len(self.compiled):  # type: ignore[arg-type]
            yield partial
            return
        slots = self.compiled[index]  # type: ignore[index]
        for extended in extend_id_bindings(self.graph, slots, partial):
            yield from self._scan(index + 1, extended)

    def explain(self, depth: int = 0) -> List[str]:
        pad = "  " * depth
        if self.compiled is None:
            return [
                self._annotate(
                    f"{pad}BgpScan [unsatisfiable: uninterned ground term]"
                )
            ]
        lines = [self._annotate(f"{pad}BgpScan est={self.cardinality:.0f}")]
        for tp in self.ordered:
            lines.append(f"{pad}  . {tp.n3()}")
        return lines


class HashJoin(PhysicalOp):
    """Join two sub-plans on their shared variables.

    The build side is materialised into buckets keyed by the shared
    variables; the probe side streams.  The planner always places the
    lower-estimate side as the build side.  When either side may produce
    bindings that are partial on the shared variables (possible only
    under UNION branches with unequal domains), the operator falls back
    to a nested loop with explicit compatibility checks, mirroring the
    reference ``omega_join``.
    """

    def __init__(self, probe: PhysicalOp, build: PhysicalOp) -> None:
        self.probe = probe
        self.build = build
        self.variables = probe.variables | build.variables
        self.shared: Tuple[Variable, ...] = tuple(
            sorted(probe.variables & build.variables, key=lambda v: v.name)
        )
        self.binds_all = probe.binds_all and build.binds_all
        denominator = max(1.0, _BOUND_SELECTIVITY ** len(self.shared))
        self.cardinality = min(
            probe.cardinality * build.cardinality / denominator, 1e18
        )

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.probe, self.build)

    def _execute(self) -> Iterator[_IDBinding]:
        built = list(self.build.execute())
        if self.actuals is not None:
            self.actuals["build_rows"] = len(built)
        if not built:
            return
        if self.binds_all and self.shared:
            buckets: Dict[Tuple[int, ...], List[_IDBinding]] = {}
            for binding in built:
                key = tuple(binding[v] for v in self.shared)
                buckets.setdefault(key, []).append(binding)
            for probe in self.probe.execute():
                key = tuple(probe[v] for v in self.shared)
                for match in buckets.get(key, ()):
                    yield {**probe, **match}
            return
        # Heterogeneous domains (UNION branches) or no shared variables.
        # Bucket on the shared variables every *built* binding does bind;
        # a probe binding that also binds them probes its bucket, anything
        # else falls back to scanning all built bindings.  Merges keep the
        # explicit compatibility check for the remaining variables.
        key_vars = tuple(v for v in self.shared if all(v in b for b in built))
        if key_vars:
            loose: Dict[Tuple[int, ...], List[_IDBinding]] = {}
            for binding in built:
                key = tuple(binding[v] for v in key_vars)
                loose.setdefault(key, []).append(binding)
            for probe in self.probe.execute():
                if all(v in probe for v in key_vars):
                    key = tuple(probe[v] for v in key_vars)
                    candidates = loose.get(key, ())
                else:
                    candidates = built
                for binding in candidates:
                    merged = self._merge(probe, binding)
                    if merged is not None:
                        yield merged
            return
        for probe in self.probe.execute():
            for binding in built:
                merged = self._merge(probe, binding)
                if merged is not None:
                    yield merged

    @staticmethod
    def _merge(left: _IDBinding, right: _IDBinding) -> Optional[_IDBinding]:
        for var, tid in right.items():
            bound = left.get(var)
            if bound is not None and bound != tid:
                return None
        return {**left, **right}

    def explain(self, depth: int = 0) -> List[str]:
        pad = "  " * depth
        mode = "hash" if (self.binds_all and self.shared) else "loop"
        on = ", ".join(f"?{v.name}" for v in self.shared) or "-"
        lines = [
            self._annotate(
                f"{pad}HashJoin[{mode}] on={on} est={self.cardinality:.0f}"
            )
        ]
        lines.extend(self.probe.explain(depth + 1))
        lines.extend(self.build.explain(depth + 1))
        return lines


class LeftJoinOp(PhysicalOp):
    """``OPTIONAL``: left rows extend with compatible right rows.

    The right (optional) side is materialised; every left row streams
    through extended by each compatible right row that passes the
    embedded condition (evaluated on the merged row, per the SPARQL
    translation), or unchanged when none does.  Optional variables may
    stay unbound, so the operator never claims ``binds_all``.
    """

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        expr: Optional[FilterExpr] = None,
        predicate: Optional[Callable[[_IDBinding], bool]] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.expr = expr
        self.predicate = predicate
        self.variables = left.variables | right.variables
        self.binds_all = False
        denominator = max(
            1.0,
            _BOUND_SELECTIVITY ** len(left.variables & right.variables),
        )
        self.cardinality = max(
            left.cardinality,
            min(left.cardinality * right.cardinality / denominator, 1e18),
        )

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def _execute(self) -> Iterator[_IDBinding]:
        built = list(self.right.execute())
        if self.actuals is not None:
            self.actuals["build_rows"] = len(built)
        predicate = self.predicate
        for probe in self.left.execute():
            extended: List[_IDBinding] = []
            for binding in built:
                merged = HashJoin._merge(probe, binding)
                if merged is None:
                    continue
                if predicate is not None and not predicate(merged):
                    continue
                extended.append(merged)
            if extended:
                yield from extended
            else:
                yield probe

    def explain(self, depth: int = 0) -> List[str]:
        pad = "  " * depth
        cond = " cond" if self.predicate is not None else ""
        lines = [
            self._annotate(f"{pad}LeftJoin{cond} est={self.cardinality:.0f}")
        ]
        lines.extend(self.left.explain(depth + 1))
        lines.extend(self.right.explain(depth + 1))
        return lines


class UnionScan(PhysicalOp):
    """Stream the branches of a UNION, deduplicating across branches."""

    def __init__(self, branches: Sequence[PhysicalOp]) -> None:
        self.branches = list(branches)
        out: Set[Variable] = set()
        for branch in self.branches:
            out.update(branch.variables)
        self.variables = frozenset(out)
        self.binds_all = all(
            b.binds_all and b.variables == self.variables
            for b in self.branches
        )
        self.cardinality = sum(b.cardinality for b in self.branches)

    def children(self) -> Tuple[PhysicalOp, ...]:
        return tuple(self.branches)

    def _execute(self) -> Iterator[_IDBinding]:
        seen: Set[FrozenSet[Tuple[str, int]]] = set()
        for branch in self.branches:
            for binding in branch.execute():
                key = frozenset((v.name, tid) for v, tid in binding.items())
                if key not in seen:
                    seen.add(key)
                    yield binding

    def explain(self, depth: int = 0) -> List[str]:
        lines = [
            self._annotate(f"{'  ' * depth}Union est={self.cardinality:.0f}")
        ]
        for branch in self.branches:
            lines.extend(branch.explain(depth + 1))
        return lines


class FilterScan(PhysicalOp):
    """Apply a compiled FILTER predicate to a child's stream."""

    def __init__(
        self,
        child: PhysicalOp,
        expr: FilterExpr,
        predicate: Callable[[_IDBinding], bool],
    ) -> None:
        self.child = child
        self.expr = expr
        self.predicate = predicate
        self.variables = child.variables
        self.binds_all = child.binds_all
        self.cardinality = child.cardinality / 2.0

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.child,)

    def _execute(self) -> Iterator[_IDBinding]:
        predicate = self.predicate
        return (b for b in self.child.execute() if predicate(b))

    def explain(self, depth: int = 0) -> List[str]:
        lines = [
            self._annotate(f"{'  ' * depth}Filter est={self.cardinality:.0f}")
        ]
        lines.extend(self.child.explain(depth + 1))
        return lines


# ---------------------------------------------------------------------------
# Solution modifiers: slice and top-k over a plan's stream
# ---------------------------------------------------------------------------

#: A projected ID row (``None`` = unbound cell).
_IDRow = Tuple[Optional[int], ...]

#: An optional row-level predicate (e.g. blank-node filtering).
_RowKeep = Optional[Callable[[_IDRow], bool]]


class OrderKey:
    """Comparable sort key honouring per-condition ASC/DESC.

    Term sort keys are heterogeneous tuples that cannot be negated, so
    a descending condition needs a comparator rather than key surgery:
    ``cells`` holds one cell key per ORDER BY condition, ``flags`` the
    matching ``descending`` booleans, and ``tie`` the canonical key of
    the projected row, making the order total over distinct rows.
    """

    __slots__ = ("cells", "flags", "tie")

    def __init__(
        self, cells: Tuple[Tuple, ...], flags: Tuple[bool, ...], tie: Tuple
    ) -> None:
        self.cells = cells
        self.flags = flags
        self.tie = tie

    def __lt__(self, other: "OrderKey") -> bool:
        for mine, theirs, descending in zip(
            self.cells, other.cells, self.flags
        ):
            if mine == theirs:
                continue
            return (mine > theirs) if descending else (mine < theirs)
        return self.tie < other.tie

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderKey):
            return NotImplemented
        return self.cells == other.cells and self.tie == other.tie


class SliceOp(PhysicalOp):
    """Streaming DISTINCT-project + OFFSET/LIMIT, no ORDER BY.

    Rows keep the child's (deterministic) stream order; the first
    ``offset`` distinct projected rows are skipped and at most ``limit``
    emitted.  The child iterator is abandoned as soon as the slice is
    full — a ``LIMIT k`` query never materialises the full result.
    """

    kind = "Slice"

    def __init__(
        self,
        child: PhysicalOp,
        projected: Sequence[Variable],
        offset: int = 0,
        limit: Optional[int] = None,
        keep: _RowKeep = None,
    ) -> None:
        self.child = child
        self.projected = tuple(projected)
        self.offset = offset
        self.limit = limit
        self.keep = keep
        self.variables = frozenset(self.projected)
        self.cardinality = (
            child.cardinality if limit is None else float(limit)
        )

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.child,)

    def rows(self) -> List[_IDRow]:
        """The sliced distinct projected rows, in stream order."""
        out = self._rows()
        if self.actuals is not None:
            actuals = self.actuals
            actuals["calls"] = actuals.get("calls", 0) + 1
            actuals["rows_out"] = actuals.get("rows_out", 0) + len(out)
        return out

    def _rows(self) -> List[_IDRow]:
        if self.limit == 0:
            return []
        out: List[_IDRow] = []
        seen: Set[_IDRow] = set()
        skipped = 0
        keep = self.keep
        for binding in self.child.execute():
            row = tuple(binding.get(v) for v in self.projected)
            if keep is not None and not keep(row):
                continue
            if row in seen:
                continue
            seen.add(row)
            if skipped < self.offset:
                skipped += 1
                continue
            out.append(row)
            if self.limit is not None and len(out) >= self.limit:
                break
        return out

    def execute(self) -> Iterator[_IDBinding]:
        # rows() records the actuals itself; skip the generic wrapper
        # so an analyzed execute() does not double-count.
        return self._execute()

    def _execute(self) -> Iterator[_IDBinding]:
        for row in self.rows():
            yield {
                v: tid
                for v, tid in zip(self.projected, row)
                if tid is not None
            }

    def explain(self, depth: int = 0) -> List[str]:
        note = f" offset={self.offset}" if self.offset else ""
        if self.limit is not None:
            note += f" limit={self.limit}"
        lines = [self._annotate(f"{'  ' * depth}Slice{note}")]
        lines.extend(self.child.explain(depth + 1))
        return lines


class TopKOp(PhysicalOp):
    """ORDER BY + DISTINCT-project + OFFSET/LIMIT with bounded state.

    Sorting happens on the *full* solutions — an ORDER BY variable need
    not be projected — and deduplication keeps, per distinct projected
    row, the solution with the minimal key, so the output order is
    deterministic.  With a LIMIT the operator keeps at most
    ``2 * (offset + limit)`` candidates instead of materialising and
    sorting every solution.
    """

    kind = "TopK"

    def __init__(
        self,
        graph: Graph,
        child: PhysicalOp,
        projected: Sequence[Variable],
        order: Sequence[OrderCondition],
        offset: int = 0,
        limit: Optional[int] = None,
        keep: _RowKeep = None,
    ) -> None:
        self.graph = graph
        self.child = child
        self.projected = tuple(projected)
        self.order = tuple(order)
        self.offset = offset
        self.limit = limit
        self.keep = keep
        self.variables = frozenset(self.projected)
        self.cardinality = (
            child.cardinality if limit is None else float(limit)
        )

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.child,)

    def rows(self) -> List[_IDRow]:
        """Distinct projected rows in query order, sliced."""
        out = self._rows()
        if self.actuals is not None:
            actuals = self.actuals
            actuals["calls"] = actuals.get("calls", 0) + 1
            actuals["rows_out"] = actuals.get("rows_out", 0) + len(out)
        return out

    def _rows(self) -> List[_IDRow]:
        bound = None if self.limit is None else self.offset + self.limit
        if bound == 0:
            return []
        decode = self.graph.decode_id
        key_cache: Dict[int, Tuple] = {}

        def cell_key(tid: Optional[int]) -> Tuple:
            if tid is None:
                return (0,)
            cached = key_cache.get(tid)
            if cached is None:
                cached = (1,) + decode(tid).sort_key()
                key_cache[tid] = cached
            return cached

        flags = tuple(condition.descending for condition in self.order)
        order_vars = tuple(condition.variable for condition in self.order)
        keep = self.keep
        best: Dict[_IDRow, OrderKey] = {}
        for binding in self.child.execute():
            row = tuple(binding.get(v) for v in self.projected)
            if keep is not None and not keep(row):
                continue
            key = OrderKey(
                tuple(cell_key(binding.get(v)) for v in order_vars),
                flags,
                tuple(cell_key(cell) for cell in row),
            )
            current = best.get(row)
            if current is None or key < current:
                best[row] = key
            if bound is not None and len(best) > 2 * bound:
                best = dict(
                    heapq.nsmallest(
                        bound, best.items(), key=lambda item: item[1]
                    )
                )
        ordered = sorted(best.items(), key=lambda item: item[1])
        sliced = ordered[self.offset :]
        if self.limit is not None:
            sliced = sliced[: self.limit]
        return [row for row, _ in sliced]

    def execute(self) -> Iterator[_IDBinding]:
        # rows() records the actuals itself; skip the generic wrapper
        # so an analyzed execute() does not double-count.
        return self._execute()

    def _execute(self) -> Iterator[_IDBinding]:
        for row in self.rows():
            yield {
                v: tid
                for v, tid in zip(self.projected, row)
                if tid is not None
            }

    def explain(self, depth: int = 0) -> List[str]:
        order = ",".join(
            f"desc(?{c.variable.name})" if c.descending
            else f"?{c.variable.name}"
            for c in self.order
        )
        note = f" order={order}"
        if self.offset:
            note += f" offset={self.offset}"
        if self.limit is not None:
            note += f" limit={self.limit}"
        lines = [self._annotate(f"{'  ' * depth}TopK{note}")]
        lines.extend(self.child.explain(depth + 1))
        return lines


def plan_bgp(
    graph: Graph, patterns: Sequence[TriplePattern]
) -> Tuple[List[TriplePattern], _CompiledBgp, float]:
    """Cost-order a BGP's conjuncts without building an operator.

    Returns ``(ordered patterns, compiled slots or None, estimate)`` —
    the same greedy ordering :class:`BgpScan` uses, exposed so the
    columnar batch engine (:mod:`repro.sparql.batch`) shares one
    planner and the two engines always agree on join order.
    """
    return BgpScan._plan(graph, list(patterns))


# ---------------------------------------------------------------------------
# FILTER compilation
# ---------------------------------------------------------------------------


def _compile_filter(
    graph: Graph, expr: FilterExpr, sentinels: Dict[Term, int]
) -> Callable[[_IDBinding], bool]:
    """Compile a FILTER expression into an ID-level predicate.

    Ground terms resolve to their dictionary ID once, at compile time.
    A ground term the dictionary has never seen cannot equal any data
    term, so it receives a fresh *negative* sentinel ID (distinct per
    term) — ``=`` against it is always false and ``!=`` always true,
    exactly matching the term-level semantics.  Ground-vs-ground
    comparisons are constant-folded on the terms themselves.  An unbound
    variable makes any comparison false (SPARQL error semantics collapse
    to false in this fragment).
    """
    if isinstance(expr, BooleanExpr):
        left = _compile_filter(graph, expr.left, sentinels)
        right = _compile_filter(graph, expr.right, sentinels)
        if expr.op == "&&":
            return lambda b: left(b) and right(b)
        return lambda b: left(b) or right(b)
    if not isinstance(expr, Comparison):  # pragma: no cover - parser invariant
        raise SparqlEvaluationError(f"unknown filter expression {expr!r}")
    equals = expr.op == "="
    if not isinstance(expr.left, Variable) and not isinstance(
        expr.right, Variable
    ):
        verdict = (expr.left == expr.right) is equals
        return lambda b: verdict

    def resolve_ground(term: Term) -> int:
        tid = graph.term_id(term)
        if tid is None:
            tid = sentinels.setdefault(term, -1 - len(sentinels))
        return tid

    if isinstance(expr.left, Variable) and isinstance(expr.right, Variable):
        lvar, rvar = expr.left, expr.right

        def compare_vars(binding: _IDBinding) -> bool:
            left_id = binding.get(lvar)
            right_id = binding.get(rvar)
            if left_id is None or right_id is None:
                return False
            return (left_id == right_id) is equals

        return compare_vars

    if isinstance(expr.left, Variable):
        var, ground_id = expr.left, resolve_ground(expr.right)
    else:
        var, ground_id = expr.right, resolve_ground(expr.left)

    def compare_ground(binding: _IDBinding) -> bool:
        bound = binding.get(var)
        if bound is None:
            return False
        return (bound == ground_id) is equals

    return compare_ground


def compile_filter(
    graph: Graph,
    expr: FilterExpr,
    sentinels: Optional[Dict[Term, int]] = None,
) -> Callable[[_IDBinding], bool]:
    """Public entry to the FILTER compiler.

    ``graph`` only supplies the term dictionary (ground terms resolve to
    IDs through it), so any graph sharing the dictionary of the bindings
    the predicate will see works — the federated executor compiles
    filters once against a peer graph and pushes them into per-endpoint
    sub-queries.  ``sentinels`` may be shared across several filters of
    one query so uninterned constants keep stable sentinel IDs.
    """
    return _compile_filter(
        graph, expr, sentinels if sentinels is not None else {}
    )


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


def _flatten_joins(node: AlgebraNode, out: List[AlgebraNode]) -> None:
    if isinstance(node, Join):
        _flatten_joins(node.left, out)
        _flatten_joins(node.right, out)
    else:
        out.append(node)


def _order_operands(operands: List[PhysicalOp]) -> List[PhysicalOp]:
    """Greedy cost-based join order over already-built operands.

    Starts from the smallest estimated operand, then repeatedly joins
    the cheapest operand that shares a variable with the bindings so
    far; disconnected operands (cross products) are deferred to the end.
    """
    if len(operands) <= 1:
        return operands
    remaining = list(enumerate(operands))
    remaining.sort(key=lambda pair: (pair[1].cardinality, pair[0]))
    _, first = remaining.pop(0)
    ordered = [first]
    bound: Set[Variable] = set(first.variables)
    while remaining:
        connected = [p for p in remaining if p[1].variables & bound]
        if not connected:
            connected = remaining
        best = min(connected, key=lambda pair: (pair[1].cardinality, pair[0]))
        remaining.remove(best)
        ordered.append(best[1])
        bound.update(best[1].variables)
    return ordered


def build_plan(graph: Graph, node: AlgebraNode) -> PhysicalOp:
    """Compile a logical algebra tree into a physical plan."""
    sentinels: Dict[Term, int] = {}
    return _build(graph, node, sentinels)


def _build(
    graph: Graph, node: AlgebraNode, sentinels: Dict[Term, int]
) -> PhysicalOp:
    if isinstance(node, Bgp):
        if not node.patterns:
            return SingletonScan()
        scan = BgpScan(graph, node.patterns)
        if scan.compiled is None:
            return EmptyScan(scan.variables, "uninterned ground term")
        return scan
    if isinstance(node, Join):
        flat: List[AlgebraNode] = []
        _flatten_joins(node, flat)
        operands = [_build(graph, operand, sentinels) for operand in flat]
        ordered = _order_operands(operands)
        plan = ordered[0]
        for operand in ordered[1:]:
            probe, build = (
                (plan, operand)
                if plan.cardinality >= operand.cardinality
                else (operand, plan)
            )
            plan = HashJoin(probe, build)
        return plan
    if isinstance(node, AlgebraUnion):
        branches: List[PhysicalOp] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, AlgebraUnion):
                stack.append(current.right)
                stack.append(current.left)
            else:
                branches.append(_build(graph, current, sentinels))
        return UnionScan(branches)
    if isinstance(node, LeftJoin):
        left = _build(graph, node.left, sentinels)
        right = _build(graph, node.right, sentinels)
        if node.expr is not None:
            predicate = _compile_filter(graph, node.expr, sentinels)
        else:
            predicate = None
        return LeftJoinOp(left, right, node.expr, predicate)
    if isinstance(node, Filter):
        child = _build(graph, node.child, sentinels)
        predicate = _compile_filter(graph, node.expr, sentinels)
        return FilterScan(child, node.expr, predicate)
    raise SparqlEvaluationError(f"unknown algebra node {node!r}")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def evaluate_plan(graph: Graph, node: AlgebraNode) -> Iterator[_IDBinding]:
    """Build and execute the physical plan for a logical tree."""
    return build_plan(graph, node).execute()


def select_id_rows(
    graph: Graph, node: AlgebraNode, variables: Sequence[Variable]
) -> Set[Tuple[Optional[int], ...]]:
    """Distinct projected rows as ID tuples (``None`` = unbound cell).

    Deduplication happens here, on integer tuples, so the decode below
    touches each distinct row once — this is the point of the ID-native
    executor.
    """
    return {
        tuple(binding.get(v) for v in variables)
        for binding in evaluate_plan(graph, node)
    }


def select_rows(
    graph: Graph, node: AlgebraNode, variables: Sequence[Variable]
) -> Set[Tuple[Optional[Term], ...]]:
    """Distinct projected rows, decoded to terms."""
    decode = graph.decode_id
    return {
        tuple(None if tid is None else decode(tid) for tid in row)
        for row in select_id_rows(graph, node, variables)
    }


def explain_plan(graph: Graph, node: AlgebraNode) -> str:
    """Human-readable physical plan (for debugging and tests)."""
    return "\n".join(build_plan(graph, node).explain())
