"""Tokenizer for the SPARQL conjunctive fragment.

Covers the surface syntax the library accepts: ``PREFIX``/``BASE``
headers, ``SELECT``/``ASK`` forms, brace-delimited group graph patterns,
``UNION``, ``FILTER`` with (in)equality, ``DISTINCT``/``REDUCED``,
``ORDER BY``/``LIMIT``/``OFFSET``, variables, IRIs, prefixed names,
literals (with language tags and datatypes), numbers and booleans.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.errors import SparqlSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "SELECT",
        "ASK",
        "WHERE",
        "PREFIX",
        "BASE",
        "UNION",
        "FILTER",
        "DISTINCT",
        "REDUCED",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "TRUE",
        "FALSE",
        # Recognised so the parser can reject them with a precise
        # "outside the conjunctive fragment" error instead of a lex error.
        "OPTIONAL",
        "GRAPH",
        "SERVICE",
        "MINUS",
        "BIND",
        "VALUES",
        "GROUP",
        "HAVING",
        "CONSTRUCT",
        "DESCRIBE",
        "EXISTS",
    }
)


class Token(NamedTuple):
    """A lexical token with source position for error messages."""

    kind: str
    value: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>\#[^\n]*)
    | (?P<iri><[^<>\s]*>)
    | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.\-]*)
    | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
    | (?P<dtype>\^\^)
    | (?P<double>[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+))
    | (?P<decimal>[+-]?\d*\.\d+)
    | (?P<integer>[+-]?\d+)
    | (?P<neq>!=)
    | (?P<andand>&&)
    | (?P<oror>\|\|)
    | (?P<word>[A-Za-z_][A-Za-z0-9_\-]*)
    | (?P<pname>[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z0-9_.\-]*|:[A-Za-z0-9_.\-]+)
    | (?P<punct>[{}().;,*=])
    """,
    re.VERBOSE,
)

# A word followed immediately by ':' is a prefixed name, not a keyword.
_PNAME_AFTER_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z0-9_.\-]*")


def tokenize(text: str) -> List[Token]:
    """Tokenize SPARQL text.

    Raises:
        SparqlSyntaxError: on any character that starts no token.
    """
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)
    while pos < length:
        # Prefer prefixed-name interpretation when a word is glued to ':'.
        pname_match = _PNAME_AFTER_WORD.match(text, pos)
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {text[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        kind = match.lastgroup or ""
        value = match.group()
        if (
            kind == "word"
            and pname_match is not None
            and len(pname_match.group()) > len(value)
        ):
            kind = "pname"
            value = pname_match.group()
            end = pname_match.end()
        else:
            end = match.end()
        column = pos - line_start + 1
        if kind == "word":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, line, column))
            elif value == "a":
                tokens.append(Token("a", value, line, column))
            else:
                raise SparqlSyntaxError(
                    f"unexpected identifier {value!r}", line=line, column=column
                )
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, value, line, column))
        newlines = value.count("\n") if kind in ("ws", "comment") else 0
        if kind == "ws" and newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = end
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
