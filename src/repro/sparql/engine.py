"""Top-level SPARQL execution: parse, translate, plan, evaluate, modify.

:func:`execute` is the single entry point used throughout the library —
it accepts a query string or a pre-parsed AST and returns a
:class:`~repro.sparql.results.SelectResult` or
:class:`~repro.sparql.results.AskResult`.

Evaluation goes through the ID-native physical plans of
:mod:`repro.sparql.plan`: joins run over dictionary IDs with cost-based
ordering, and only the distinct projected rows are decoded back into
terms.  The term-level evaluator in :mod:`repro.sparql.algebra` remains
available as the reference oracle for tests.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import SparqlEvaluationError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import BlankNode
from repro.sparql.algebra import translate_group
from repro.sparql.ast import AskQuery, Query, SelectQuery
from repro.sparql.parser import parse_query
from repro.sparql.plan import (
    SliceOp,
    TopKOp,
    build_plan,
    evaluate_plan,
    select_rows,
)
from repro.sparql.results import AskResult, SelectResult

__all__ = ["execute", "select", "ask_text"]


def execute(
    graph: Graph,
    query: Union[str, Query],
    nsm: Optional[NamespaceManager] = None,
    include_blanks: bool = True,
) -> Union[SelectResult, AskResult]:
    """Run a SPARQL query over a graph.

    Args:
        graph: the RDF database.
        query: query text or a pre-parsed AST.
        nsm: namespace manager for resolving prefixed names in the text.
        include_blanks: when False, rows containing blank nodes are
            dropped — this implements the paper's ``Q_D`` semantics, used
            when the graph is a universal solution and blank nodes are
            labelled nulls rather than data.

    Returns:
        SelectResult for SELECT, AskResult for ASK.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    if isinstance(ast, SelectQuery):
        return _execute_select(graph, ast, include_blanks)
    if isinstance(ast, AskQuery):
        node = translate_group(ast.where)
        return AskResult(any(True for _ in evaluate_plan(graph, node)))
    raise SparqlEvaluationError(f"unsupported query type {type(ast).__name__}")


def _execute_select(
    graph: Graph, ast: SelectQuery, include_blanks: bool
) -> SelectResult:
    node = translate_group(ast.where)
    variables = ast.projected()
    if ast.order or ast.limit is not None or ast.offset is not None:
        # Solution modifiers run over the streaming plan on ID rows:
        # TopK sorts full solutions (ORDER BY may name non-projected
        # variables) with bounded state; a bare slice stops pulling the
        # plan once the window is full.
        plan = build_plan(graph, node)
        decode = graph.decode_id
        keep = None
        if not include_blanks:

            def keep(row):
                return not any(
                    tid is not None and isinstance(decode(tid), BlankNode)
                    for tid in row
                )

        offset = ast.offset or 0
        if ast.order:
            id_rows = TopKOp(
                graph, plan, variables, ast.order, offset, ast.limit, keep
            ).rows()
        else:
            id_rows = SliceOp(
                plan, variables, offset, ast.limit, keep
            ).rows()
        decoded = [
            tuple(None if tid is None else decode(tid) for tid in row)
            for row in id_rows
        ]
        return SelectResult(variables, decoded)
    rows = select_rows(graph, node, variables)
    if not include_blanks:
        rows = {
            row
            for row in rows
            if not any(isinstance(cell, BlankNode) for cell in row)
        }
    # Set semantics (the paper evaluates under set semantics); the
    # canonical sort keeps unmodified results deterministic.
    return SelectResult(variables, sorted(rows, key=_row_sort_key))


def _cell_sort_key(cell):
    return (0,) if cell is None else (1,) + cell.sort_key()


def _row_sort_key(row):
    return tuple(_cell_sort_key(cell) for cell in row)


def select(
    graph: Graph,
    query: str,
    nsm: Optional[NamespaceManager] = None,
    include_blanks: bool = True,
) -> SelectResult:
    """Typed convenience wrapper: run a SELECT query.

    Raises:
        SparqlEvaluationError: if the text is not a SELECT query.
    """
    result = execute(graph, query, nsm, include_blanks)
    if not isinstance(result, SelectResult):
        raise SparqlEvaluationError("expected a SELECT query")
    return result


def ask_text(
    graph: Graph, query: str, nsm: Optional[NamespaceManager] = None
) -> bool:
    """Typed convenience wrapper: run an ASK query, returning a bool.

    Raises:
        SparqlEvaluationError: if the text is not an ASK query.
    """
    result = execute(graph, query, nsm)
    if not isinstance(result, AskResult):
        raise SparqlEvaluationError("expected an ASK query")
    return bool(result)
