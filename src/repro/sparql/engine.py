"""Top-level SPARQL execution: parse, translate, plan, evaluate, modify.

:func:`execute` is the single entry point used throughout the library —
it accepts a query string or a pre-parsed AST and returns a
:class:`~repro.sparql.results.SelectResult` or
:class:`~repro.sparql.results.AskResult`.

Evaluation picks a physical engine per query shape:

* **columnar batch engine** (:mod:`repro.sparql.batch`) for SELECT
  queries that are unmodified or carry ORDER BY — their results are a
  pure function of the solution *set*, so the batch engine's bulk
  execution order cannot show through;
* **row engine** (:mod:`repro.sparql.plan`) for LIMIT/OFFSET without
  ORDER BY — which slice of the distinct rows comes back depends on
  the stream order, and the streaming ``SliceOp`` abandons the plan
  the moment the window fills — and for ASK, which wants the first
  row only.

Text queries are served through the cross-query
:data:`~repro.sparql.cache.default_plan_cache`: a hit skips parsing,
algebra translation and physical planning entirely, keyed on
``(graph.serial, graph.epoch, text, namespace fingerprint,
include_blanks)`` so any graph mutation invalidates by key change.
The term-level evaluator in :mod:`repro.sparql.algebra` remains
available as the reference oracle for tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from repro.errors import SparqlEvaluationError
from repro.obs.analyze import attach_actuals
from repro.obs.trace import NULL_TRACER
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import BlankNode
from repro.sparql.algebra import translate_group
from repro.sparql.ast import AskQuery, Query, SelectQuery
from repro.sparql.batch import (
    BatchOp,
    batch_top_k,
    build_batch_plan,
)
from repro.sparql.cache import default_plan_cache, nsm_fingerprint
from repro.sparql.parser import parse_query
from repro.sparql.plan import PhysicalOp, SliceOp, build_plan
from repro.sparql.results import AskResult, SelectResult

__all__ = ["execute", "explain", "select", "ask_text", "plan_cache_stats"]


class _PreparedLocal:
    """A fully planned query, ready to execute without parse or plan.

    ``batch_op`` is set for the columnar paths, ``row_plan`` for the
    streaming paths (bare LIMIT/OFFSET, ASK); both are re-executable,
    so one cache entry serves any number of executions against the
    same graph epoch.
    """

    __slots__ = ("ast", "variables", "batch_op", "row_plan")

    def __init__(
        self,
        ast: Query,
        variables: Tuple,
        batch_op: Optional[BatchOp],
        row_plan: Optional[PhysicalOp],
    ) -> None:
        self.ast = ast
        self.variables = variables
        self.batch_op = batch_op
        self.row_plan = row_plan


def _uses_batch_engine(ast: Query) -> bool:
    """Whether the columnar engine may serve this query.

    True for SELECTs whose output is a pure function of the solution
    set: unmodified queries (canonical sort) and ORDER BY queries
    (total order with canonical tiebreak).  A bare LIMIT/OFFSET keeps
    the row engine, whose documented slice semantics follow its own
    deterministic stream order.
    """
    if not isinstance(ast, SelectQuery):
        return False
    if ast.order:
        return True
    return ast.limit is None and ast.offset is None


def _prepare(graph: Graph, ast: Query, tracer=NULL_TRACER) -> _PreparedLocal:
    """Translate and physically plan a parsed query."""
    with tracer.span("normalise"):
        node = translate_group(ast.where)
    with tracer.span("plan"):
        if isinstance(ast, SelectQuery):
            variables = tuple(ast.projected())
            if _uses_batch_engine(ast):
                return _PreparedLocal(
                    ast, variables, build_batch_plan(graph, node), None
                )
            return _PreparedLocal(
                ast, variables, None, build_plan(graph, node)
            )
        if isinstance(ast, AskQuery):
            return _PreparedLocal(ast, (), None, build_plan(graph, node))
    raise SparqlEvaluationError(f"unsupported query type {type(ast).__name__}")


def execute(
    graph: Graph,
    query: Union[str, Query],
    nsm: Optional[NamespaceManager] = None,
    include_blanks: bool = True,
    tracer=NULL_TRACER,
) -> Union[SelectResult, AskResult]:
    """Run a SPARQL query over a graph.

    Args:
        graph: the RDF database.
        query: query text or a pre-parsed AST.  Text goes through the
            cross-query plan cache; a hit skips parse and plan.
        nsm: namespace manager for resolving prefixed names in the text.
        include_blanks: when False, rows containing blank nodes are
            dropped — this implements the paper's ``Q_D`` semantics, used
            when the graph is a universal solution and blank nodes are
            labelled nulls rather than data.
        tracer: a :class:`~repro.obs.trace.Tracer` collecting wall
            spans around the parse → normalise → plan → execute phases;
            defaults to the shared no-op tracer.

    Returns:
        SelectResult for SELECT, AskResult for ASK.
    """
    if isinstance(query, str):
        key = (
            graph.serial,
            graph.epoch,
            query,
            nsm_fingerprint(nsm),
            include_blanks,
        )
        prepared = default_plan_cache.get(key)
        if prepared is None:
            with tracer.span("parse"):
                ast = parse_query(query, nsm)
            prepared = _prepare(graph, ast, tracer)
            default_plan_cache.put(key, prepared)
    else:
        prepared = _prepare(graph, query, tracer)
    with tracer.span("execute"):
        return _execute_prepared(graph, prepared, include_blanks)


def plan_cache_stats() -> dict:
    """Hit/miss/size counters of the local engine's plan cache."""
    return default_plan_cache.stats()


def explain(
    graph: Graph,
    query: Union[str, Query],
    nsm: Optional[NamespaceManager] = None,
    include_blanks: bool = True,
    analyze: bool = False,
) -> str:
    """Render the local physical plan, optionally with executed actuals.

    Plans the query fresh — never through (or into) the shared plan
    cache — so an analyzed execution's counters cannot leak into
    operators a later :func:`execute` call would reuse.  With
    ``analyze=True`` the plan is executed first and every operator
    line carries its ``(actual ...)`` counters next to the planner's
    estimates; the counters are plain integers over a deterministic
    execution, so repeated calls render byte-identical text.
    """
    ast = parse_query(query, nsm) if isinstance(query, str) else query
    prepared = _prepare(graph, ast)
    if prepared.batch_op is not None:
        engine = "batch"
        root = prepared.batch_op
    else:
        engine = "row"
        root = prepared.row_plan
        if isinstance(ast, SelectQuery):
            # Mirror _execute_prepared: the streaming slice is part of
            # the executed tree, so it must show (and count) here too.
            keep = (
                _blank_row_filter(graph.decode_id)
                if not include_blanks
                else None
            )
            root = SliceOp(
                prepared.row_plan,
                prepared.variables,
                ast.offset or 0,
                ast.limit,
                keep,
            )
    if analyze:
        attach_actuals(root)
        if prepared.batch_op is not None:
            _execute_prepared(graph, prepared, include_blanks)
        elif isinstance(ast, AskQuery):
            any(True for _ in root.execute())
        else:
            root.rows()
    lines: List[str] = [f"{engine} engine"]
    lines.extend(root.explain())
    return "\n".join(lines)


def _execute_prepared(
    graph: Graph, prepared: _PreparedLocal, include_blanks: bool
) -> Union[SelectResult, AskResult]:
    ast = prepared.ast
    if isinstance(ast, AskQuery):
        return AskResult(any(True for _ in prepared.row_plan.execute()))
    variables = prepared.variables
    decode = graph.decode_id
    keep = _blank_row_filter(decode) if not include_blanks else None
    if prepared.batch_op is not None:
        batch = prepared.batch_op.execute()
        if ast.order:
            id_rows = batch_top_k(
                graph,
                batch,
                variables,
                ast.order,
                ast.offset or 0,
                ast.limit,
                keep,
            )
        else:
            rows = batch.id_rows(variables)
            if keep is not None:
                rows = {row for row in rows if keep(row)}
            id_rows = sorted(rows, key=_id_row_sort_key(decode))
    else:
        # Bare LIMIT/OFFSET: the streaming row engine slices its own
        # deterministic stream order and stops pulling once full.
        id_rows = SliceOp(
            prepared.row_plan, variables, ast.offset or 0, ast.limit, keep
        ).rows()
    decoded = [
        tuple(None if tid is None else decode(tid) for tid in row)
        for row in id_rows
    ]
    return SelectResult(variables, decoded)


def _blank_row_filter(decode) -> Callable[[Tuple], bool]:
    def keep(row: Tuple) -> bool:
        return not any(
            tid is not None and isinstance(decode(tid), BlankNode)
            for tid in row
        )

    return keep


def _id_row_sort_key(decode):
    def key(row: Tuple) -> Tuple:
        return tuple(
            (0,) if tid is None else (1,) + decode(tid).sort_key()
            for tid in row
        )

    return key


def select(
    graph: Graph,
    query: str,
    nsm: Optional[NamespaceManager] = None,
    include_blanks: bool = True,
) -> SelectResult:
    """Typed convenience wrapper: run a SELECT query.

    Raises:
        SparqlEvaluationError: if the text is not a SELECT query.
    """
    result = execute(graph, query, nsm, include_blanks)
    if not isinstance(result, SelectResult):
        raise SparqlEvaluationError("expected a SELECT query")
    return result


def ask_text(
    graph: Graph, query: str, nsm: Optional[NamespaceManager] = None
) -> bool:
    """Typed convenience wrapper: run an ASK query, returning a bool.

    Raises:
        SparqlEvaluationError: if the text is not an ASK query.
    """
    result = execute(graph, query, nsm)
    if not isinstance(result, AskResult):
        raise SparqlEvaluationError("expected an ASK query")
    return bool(result)
