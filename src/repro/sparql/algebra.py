"""SPARQL algebra: translation from the AST and evaluation over a graph.

The algebra has six operators — ``BGP``, ``Join``, ``Union``,
``LeftJoin`` (the ``OPTIONAL`` construct), ``Filter`` and ``Project``
(plus the ``Distinct``/``Slice``/``OrderBy`` solution modifiers applied
at result construction).  Per the SPARQL translation, filters at the
top level of an ``OPTIONAL`` group become the ``LeftJoin``'s embedded
condition and are evaluated over the *merged* solution, so they may
reference variables of the required side.

:func:`evaluate_algebra` is the *reference* evaluator: it materialises
sets of :class:`~repro.gpq.bindings.SolutionMapping` at every node,
reusing the paper-faithful join semantics from :mod:`repro.gpq`.  The
production path is the ID-native streaming executor in
:mod:`repro.sparql.plan`, which must produce exactly the same solution
sets (asserted by the test suite and the ``sparql`` benchmark suite);
this module stays deliberately naive so it can serve as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple
from typing import Union as TypingUnion

from repro.errors import SparqlEvaluationError
from repro.gpq.bindings import SolutionMapping, join as omega_join, union as omega_union
from repro.gpq.evaluation import evaluate_pattern
from repro.gpq.pattern import GraphPattern
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.ast import (
    BooleanExpr,
    Comparison,
    FilterExpr,
    GroupPattern,
    OptionalPattern,
    UnionPattern,
)

__all__ = [
    "AlgebraNode",
    "Bgp",
    "Join",
    "Union",
    "LeftJoin",
    "Filter",
    "translate_group",
    "evaluate_algebra",
    "reference_select",
]


@dataclass(frozen=True)
class Bgp:
    """A basic graph pattern: conjunction of triple patterns."""

    patterns: Tuple[TriplePattern, ...]

    def variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for tp in self.patterns:
            out.update(tp.variables())
        return frozenset(out)


@dataclass(frozen=True)
class Join:
    left: "AlgebraNode"
    right: "AlgebraNode"

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Union:
    left: "AlgebraNode"
    right: "AlgebraNode"

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class LeftJoin:
    """``OPTIONAL``: extend left solutions with compatible right ones.

    ``expr`` is the optional group's top-level FILTER condition (``None``
    for unconditional extension); per the SPARQL translation it is
    evaluated on the *merged* solution, unlike filters nested deeper in
    the optional group, which scope to their own group.
    """

    left: "AlgebraNode"
    right: "AlgebraNode"
    expr: Optional[FilterExpr] = None

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Filter:
    expr: FilterExpr
    child: "AlgebraNode"

    def variables(self) -> FrozenSet[Variable]:
        return self.child.variables()


AlgebraNode = TypingUnion[Bgp, Join, Union, LeftJoin, Filter]


def translate_group(group: GroupPattern) -> AlgebraNode:
    """Translate a parsed WHERE group into an algebra tree.

    Adjacent triple patterns merge into one BGP (so the optimizer can
    reorder them); nested groups and unions join with what came before;
    ``OPTIONAL`` left-joins everything accumulated so far (the SPARQL
    left-to-right translation), hoisting the optional group's top-level
    filters into the ``LeftJoin`` condition; filters of the group itself
    wrap the whole group (SPARQL filters scope to their group).
    """
    filters: List[FilterExpr] = []
    operands: List[AlgebraNode] = []
    bgp_buffer: List[TriplePattern] = []

    def flush_bgp() -> None:
        if bgp_buffer:
            operands.append(Bgp(tuple(bgp_buffer)))
            bgp_buffer.clear()

    def fold() -> AlgebraNode:
        if not operands:
            # Empty group matches the empty mapping.
            return Bgp(())
        node = operands[0]
        for operand in operands[1:]:
            node = Join(node, operand)
        return node

    for element in group.elements:
        if isinstance(element, TriplePattern):
            bgp_buffer.append(element)
        elif isinstance(element, GroupPattern):
            flush_bgp()
            operands.append(translate_group(element))
        elif isinstance(element, UnionPattern):
            flush_bgp()
            node = translate_group(element.alternatives[0])
            for alt in element.alternatives[1:]:
                node = Union(node, translate_group(alt))
            operands.append(node)
        elif isinstance(element, OptionalPattern):
            flush_bgp()
            # Only the optional group's *direct* filters become the
            # LeftJoin condition (they see the merged solution, per the
            # SPARQL translation's FS collection); a filter inside a
            # nested group keeps that group's scope and stays a Filter
            # node in the translated sub-tree — peeling Filter wrappers
            # off the translated tree instead would wrongly hoist it.
            direct = [
                e
                for e in element.group.elements
                if isinstance(e, (Comparison, BooleanExpr))
            ]
            rest = GroupPattern(
                tuple(
                    e
                    for e in element.group.elements
                    if not isinstance(e, (Comparison, BooleanExpr))
                )
            )
            inner = translate_group(rest)
            expr: Optional[FilterExpr] = None
            for condition in direct:
                expr = (
                    condition
                    if expr is None
                    else BooleanExpr("&&", expr, condition)
                )
            operands[:] = [LeftJoin(fold(), inner, expr)]
        elif isinstance(element, (Comparison, BooleanExpr)):
            filters.append(element)
        else:  # pragma: no cover - parser guarantees element types
            raise SparqlEvaluationError(f"unknown group element {element!r}")
    flush_bgp()

    node = fold()
    for expr in filters:
        node = Filter(expr, node)
    return node


def reference_select(graph: Graph, ast) -> List[Tuple[Optional[Term], ...]]:
    """Naive-but-correct SELECT with solution modifiers (the oracle).

    Evaluates the WHERE clause with :func:`evaluate_algebra`, sorts the
    *full* solution mappings (ORDER BY may name non-projected
    variables), projects, deduplicates keeping the first occurrence, and
    slices — a direct transcription of the SPARQL result-construction
    pipeline, independent of the streaming operators it checks.

    Returns the projected term rows in query order (``None`` = unbound).
    """
    solutions = list(evaluate_algebra(graph, translate_group(ast.where)))
    variables = ast.projected()

    def cell_key(term: Optional[Term]) -> Tuple:
        return (0,) if term is None else (1,) + term.sort_key()

    def projected_key(mu: SolutionMapping) -> Tuple:
        return tuple(cell_key(mu.get(v)) for v in variables)

    # Canonical tiebreak first, then each ORDER BY condition via stable
    # sorts applied right-to-left — a deliberately different algorithm
    # from the engines' comparator keys.
    solutions.sort(key=projected_key)
    for condition in reversed(ast.order):
        solutions.sort(
            key=lambda mu: cell_key(mu.get(condition.variable)),
            reverse=condition.descending,
        )
    rows: List[Tuple[Optional[Term], ...]] = []
    seen: Set[Tuple[Optional[Term], ...]] = set()
    for mu in solutions:
        row = tuple(mu.get(v) for v in variables)
        if row in seen:
            continue
        seen.add(row)
        rows.append(row)
    offset = ast.offset or 0
    rows = rows[offset:]
    if ast.limit is not None:
        rows = rows[: ast.limit]
    return rows


def _eval_filter_expr(expr: FilterExpr, mu: SolutionMapping) -> bool:
    """Evaluate a filter expression under a mapping.

    Unbound variables make the comparison fail (SPARQL error semantics
    collapse to ``false`` in this fragment).
    """
    if isinstance(expr, BooleanExpr):
        left = _eval_filter_expr(expr.left, mu)
        right = _eval_filter_expr(expr.right, mu)
        return (left and right) if expr.op == "&&" else (left or right)
    left = _resolve(expr.left, mu)
    right = _resolve(expr.right, mu)
    if left is None or right is None:
        return False
    return (left == right) if expr.op == "=" else (left != right)


def _resolve(term: Term, mu: SolutionMapping):
    if isinstance(term, Variable):
        return mu.get(term)
    return term


def evaluate_algebra(graph: Graph, node: AlgebraNode) -> Set[SolutionMapping]:
    """Evaluate an algebra tree over a graph (set semantics)."""
    if isinstance(node, Bgp):
        if not node.patterns:
            return {SolutionMapping()}
        pattern = GraphPattern.conjunction(list(node.patterns))
        return evaluate_pattern(graph, pattern)
    if isinstance(node, Join):
        left = evaluate_algebra(graph, node.left)
        if not left:
            return set()
        right = evaluate_algebra(graph, node.right)
        return omega_join(left, right)
    if isinstance(node, Union):
        return omega_union(
            evaluate_algebra(graph, node.left),
            evaluate_algebra(graph, node.right),
        )
    if isinstance(node, LeftJoin):
        left = evaluate_algebra(graph, node.left)
        if not left:
            return set()
        right = evaluate_algebra(graph, node.right)
        out: Set[SolutionMapping] = set()
        for mu1 in left:
            extended = [
                mu1.merge(mu2)
                for mu2 in right
                if mu1.compatible_with(mu2)
            ]
            if node.expr is not None:
                extended = [
                    mu for mu in extended if _eval_filter_expr(node.expr, mu)
                ]
            if extended:
                out.update(extended)
            else:
                out.add(mu1)
        return out
    if isinstance(node, Filter):
        child = evaluate_algebra(graph, node.child)
        return {mu for mu in child if _eval_filter_expr(node.expr, mu)}
    raise SparqlEvaluationError(f"unknown algebra node {node!r}")
