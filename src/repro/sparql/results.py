"""Result containers and formatting for SPARQL queries.

``SELECT`` produces a :class:`SelectResult` — an ordered sequence of rows
over a fixed variable list — and ``ASK`` a :class:`AskResult`.  Rows print
like the paper's listings (``DB1:Toby_Maguire "39"``), using a namespace
manager when one is supplied.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import BlankNode, IRI, Term, Variable

__all__ = ["SelectResult", "AskResult"]


class SelectResult:
    """An ordered table of solution rows.

    Args:
        variables: the projection, in order.
        rows: tuples aligned with ``variables``; a ``None`` cell means the
            variable is unbound in that solution (cannot happen in the
            conjunctive fragment but kept for safety).
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        rows: Sequence[Tuple[Optional[Term], ...]],
    ) -> None:
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.rows: List[Tuple[Optional[Term], ...]] = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Optional[Term], ...]]:
        return iter(self.rows)

    def __contains__(self, row: Tuple[Optional[Term], ...]) -> bool:
        return tuple(row) in set(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SelectResult):
            return NotImplemented
        return self.variables == other.variables and sorted(
            self.rows, key=_row_key
        ) == sorted(other.rows, key=_row_key)

    def __repr__(self) -> str:
        return f"<SelectResult {len(self.rows)} rows x {len(self.variables)} vars>"

    def as_set(self) -> Set[Tuple[Optional[Term], ...]]:
        """Rows as a set (the paper's set semantics)."""
        return set(self.rows)

    def sorted(self) -> "SelectResult":
        """A copy with rows in the deterministic term order."""
        return SelectResult(self.variables, sorted(self.rows, key=_row_key))

    def project(self, variables: Sequence[Variable]) -> "SelectResult":
        """Project onto a sub-list of the variables."""
        indexes = [self.variables.index(v) for v in variables]
        rows = [tuple(row[i] for i in indexes) for row in self.rows]
        return SelectResult(variables, rows)

    def drop_blank_rows(self) -> "SelectResult":
        """Remove rows containing blank nodes (the ``Q_D`` semantics)."""
        rows = [
            row
            for row in self.rows
            if not any(isinstance(cell, BlankNode) for cell in row)
        ]
        return SelectResult(self.variables, rows)

    def to_text(self, nsm: Optional[NamespaceManager] = None) -> str:
        """Paper-listing style rendering, one row per line."""
        lines = []
        for row in self.rows:
            lines.append(" ".join(_render(cell, nsm) for cell in row))
        return "\n".join(lines)

    def to_table(self, nsm: Optional[NamespaceManager] = None) -> str:
        """ASCII table with a header row."""
        header = [f"?{v.name}" for v in self.variables]
        body = [[_render(cell, nsm) for cell in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        out = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            sep,
        ]
        for row in body:
            out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(out)


class AskResult:
    """Boolean result of an ASK query."""

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def __bool__(self) -> bool:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AskResult):
            return self.value == other.value
        if isinstance(other, bool):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("AskResult", self.value))

    def __repr__(self) -> str:
        return f"AskResult({self.value})"

    def to_text(self) -> str:
        return "true" if self.value else "false"


def _render(cell: Optional[Term], nsm: Optional[NamespaceManager]) -> str:
    if cell is None:
        return ""
    if nsm is not None and isinstance(cell, IRI):
        return nsm.display(cell)
    return cell.n3()


def _row_key(row: Tuple[Optional[Term], ...]) -> Tuple:
    return tuple(
        ((0,) if cell is None else (1,) + cell.sort_key()) for cell in row
    )
