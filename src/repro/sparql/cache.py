"""Cross-query LRU plan cache shared by the local and federated engines.

Parsing, algebra translation and physical planning are pure functions of
(query text, namespace bindings, database state), so identical traffic —
the millions-of-users story the paper targets — should pay for them
once.  :class:`PlanCache` is a small LRU keyed on exactly those inputs
with hit/miss counters, used two ways:

* the local engine (:mod:`repro.sparql.engine`) caches fully-built
  physical plans (columnar batch plans and row plans alike) keyed on
  ``(graph.serial, graph.epoch, query text, namespace fingerprint,
  include_blanks)`` — the graph's mutation epoch invalidates entries
  the moment the data changes, and the serial keeps distinct graphs
  from colliding;
* the federated executor caches its ``PreparedQuery`` source-selection
  plans keyed on ``(query text, namespace fingerprint, statistics
  epoch)`` — a refresh of the :class:`StatisticsCatalog` bumps the
  epoch and naturally strands stale plans.

Stale entries are never proactively evicted: a changed epoch changes
the *key*, so old entries simply age out of the LRU.  Both engines
surface the counters (``explain`` federation-side,
:func:`plan_cache_stats` locally) so the skip-parse-skip-plan claim is
testable rather than folklore.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from repro.rdf.namespaces import NamespaceManager

__all__ = [
    "PlanCache",
    "nsm_fingerprint",
    "default_plan_cache",
]


def nsm_fingerprint(
    nsm: Optional[NamespaceManager],
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """A hashable digest of the namespace bindings a parse depends on.

    Two managers with the same prefix->namespace map produce the same
    fingerprint, so equivalent sessions share cache entries; ``None``
    (parse with no manager) is its own distinct key.
    """
    if nsm is None:
        return None
    return tuple(sorted(nsm.namespaces()))


class PlanCache:
    """A bounded LRU mapping plan keys to prepared plans.

    Keys must capture *every* input the cached value was derived from
    (query text, namespace fingerprint, data/statistics epoch); the
    cache itself is policy-free and never inspects them.  ``get`` and
    ``put`` are O(1); eviction discards the least recently used entry.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses")

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached plan for ``key``, or None; counts a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting the LRU entry if full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Counters for ``explain`` surfaces and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }


#: Process-wide cache used by :func:`repro.sparql.engine.execute` for
#: text queries.  Tests may ``clear()`` it to get deterministic counts.
default_plan_cache = PlanCache(capacity=256)
