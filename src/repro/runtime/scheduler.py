"""Overlap-aware request scheduling on top of the simulation kernel.

The federated executor discovers its requests *synchronously* — it
evaluates a sub-query against a peer graph, learns the result size, and
only then knows the request's wire duration.  The scheduler therefore
runs in two phases:

1. **Recording.**  During execution the executor calls :meth:`submit`
   for every simulated request, naming the endpoint, the priced
   duration, and the requests it depends on (a bound-join wave depends
   on the wave that produced its input bindings; independent
   per-endpoint fan-outs and UNION branches share no dependencies).
   Nothing is simulated yet — submissions only build a dependency DAG.

2. **Simulation.**  :meth:`makespan` replays the DAG through a
   :class:`~repro.runtime.kernel.SimKernel`: a request *arrives* at its
   per-endpoint :class:`~repro.runtime.channel.Channel` once every
   dependency has completed (never before its wave's release time), the
   channel serves it under its concurrency/in-flight limits, and its
   completion releases its dependents.  The final virtual clock is the
   execution's **elapsed** (makespan) seconds — what a wall clock would
   have shown — as opposed to the **busy** seconds the network model
   accumulates by summing durations.

Replays are deterministic: arrival ties break on submission order, so
the computed makespan is a pure function of the recorded DAG.  Fault
recovery records onto the same DAG — a failed attempt is a normal
(charged) request, and its retry carries a ``delay`` equal to the
backoff wait, so recovery time shows up in the makespan without any
special-casing in the replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.runtime.channel import Channel, ChannelStats, Request
from repro.runtime.kernel import SimKernel

__all__ = [
    "OverlapScheduler",
    "RequestHandle",
    "DEFAULT_CONCURRENCY",
    "peak_overlap",
]

#: Default per-endpoint service concurrency (a small worker pool, the
#: shape of a public SPARQL endpoint behind a connection limit).
DEFAULT_CONCURRENCY = 4


@dataclass
class RequestHandle:
    """One recorded request in the dependency DAG.

    Attributes:
        index: submission order (also the determinism tie-breaker).
        endpoint: target channel name.
        seconds: priced wire duration.
        after: handles that must complete before this request is sent.
        release: earliest virtual time the request may be sent.
        delay: seconds between the last dependency's completion and
            this request's arrival — a retry's backoff wait, priced
            through the kernel so the makespan reflects it.
        label: free-form trace tag.
        failed: the attempt was answered with an injected fault; it
            still occupies its channel for ``seconds`` (failures are
            charged like real traffic).
        tenant: owning query/coordinator in a multi-tenant replay
            (:mod:`repro.runtime.multi`); empty for single-query DAGs.
        arrived_at/started_at/completed_at: timeline, filled by the
            replay (``-1`` before :meth:`OverlapScheduler.makespan`).
    """

    index: int
    endpoint: str
    seconds: float
    after: Tuple["RequestHandle", ...] = ()
    release: float = 0.0
    delay: float = 0.0
    label: str = ""
    failed: bool = False
    tenant: str = ""
    arrived_at: float = -1.0
    started_at: float = -1.0
    completed_at: float = -1.0


def peak_overlap(handles: Sequence[RequestHandle]) -> int:
    """Maximum number of the given requests simultaneously in service.

    Reads the ``started_at``/``completed_at`` timelines filled by the
    last replay (:meth:`OverlapScheduler.makespan`); handles that never
    replayed are ignored.  The federated plan layer uses this to report
    how many of one operator's requests — e.g. the batches of a
    pipelined bound join — actually overlapped.
    """
    events: List[Tuple[float, int]] = []
    for handle in handles:
        if handle.completed_at < 0:
            continue
        events.append((handle.started_at, 1))
        events.append((handle.completed_at, -1))
    # Completions sort before starts at the same instant: a request that
    # ends exactly when another begins does not overlap it.
    events.sort(key=lambda event: (event[0], event[1]))
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


@dataclass
class _Node:
    """Replay bookkeeping for one handle."""

    handle: RequestHandle
    pending: int = 0
    dependents: List["_Node"] = field(default_factory=list)


class OverlapScheduler:
    """Records a request DAG and replays it into a makespan.

    Args:
        concurrency: service lanes per endpoint channel.
        max_in_flight: per-endpoint outstanding-request window
            (``None`` = unbounded).
        per_endpoint_concurrency: optional per-endpoint overrides.
    """

    def __init__(
        self,
        concurrency: int = DEFAULT_CONCURRENCY,
        max_in_flight: Optional[int] = None,
        per_endpoint_concurrency: Optional[Dict[str, int]] = None,
    ) -> None:
        if concurrency < 1:
            raise SimulationError(
                f"scheduler concurrency must be >= 1: {concurrency}"
            )
        if max_in_flight is not None and max_in_flight < concurrency:
            # Fail here, not during the replay after a whole execution
            # has already been recorded against the DAG.
            raise SimulationError(
                f"max_in_flight ({max_in_flight}) below concurrency "
                f"({concurrency}) would waste service lanes"
            )
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        self.per_endpoint_concurrency = dict(per_endpoint_concurrency or {})
        self._handles: List[RequestHandle] = []
        self._channel_stats: Dict[str, ChannelStats] = {}
        self._makespan: Optional[float] = None

    def __len__(self) -> int:
        return len(self._handles)

    def submit(
        self,
        endpoint: str,
        seconds: float,
        after: Sequence[RequestHandle] = (),
        release: float = 0.0,
        label: str = "",
        delay: float = 0.0,
        failed: bool = False,
    ) -> RequestHandle:
        """Record one request; returns its handle for dependency wiring.

        ``delay`` postpones the request's arrival by that many seconds
        after its dependencies complete (retry backoff); ``failed``
        marks an injected-fault attempt, which still occupies its
        channel like any other request.
        """
        if seconds < 0:
            raise SimulationError(f"negative request duration: {seconds}")
        if delay < 0:
            raise SimulationError(f"negative request delay: {delay}")
        handle = RequestHandle(
            index=len(self._handles),
            endpoint=endpoint,
            seconds=seconds,
            after=tuple(after),
            release=release,
            delay=delay,
            label=label,
            failed=failed,
        )
        self._handles.append(handle)
        self._makespan = None  # DAG changed; replay again
        return handle

    # -- replay ---------------------------------------------------------

    def makespan(self) -> float:
        """Simulate the recorded DAG; returns elapsed virtual seconds.

        Idempotent: the replay is cached until the next :meth:`submit`.
        """
        if self._makespan is None:
            self._makespan = self._replay()
        return self._makespan

    def busy_seconds(self) -> float:
        """Summed request durations (the serial lower bound's total)."""
        return sum(handle.seconds for handle in self._handles)

    def channel_stats(self) -> Dict[str, ChannelStats]:
        """Per-endpoint service statistics of the last replay."""
        self.makespan()
        return dict(self._channel_stats)

    def timeline(self) -> List[RequestHandle]:
        """Handles in submission order with their replayed timelines."""
        self.makespan()
        return list(self._handles)

    def _replay(self) -> float:
        kernel = SimKernel()
        channels: Dict[str, Channel] = {}
        nodes = [_Node(handle) for handle in self._handles]
        for node in nodes:
            node.pending = len(node.handle.after)
            for dep in node.handle.after:
                if dep.index >= node.handle.index:
                    raise SimulationError(
                        "dependency cycle: a request may only depend on "
                        "earlier submissions"
                    )
                nodes[dep.index].dependents.append(node)

        def channel_for(name: str) -> Channel:
            channel = channels.get(name)
            if channel is None:
                channel = Channel(
                    kernel,
                    name,
                    concurrency=self.per_endpoint_concurrency.get(
                        name, self.concurrency
                    ),
                    max_in_flight=self.max_in_flight,
                )
                channels[name] = channel
            return channel

        def arrive(node: _Node) -> None:
            handle = node.handle

            def on_complete(request: Request) -> None:
                handle.started_at = request.started_at
                handle.completed_at = request.completed_at
                for dependent in node.dependents:
                    dependent.pending -= 1
                    if dependent.pending == 0:
                        _schedule_arrival(dependent)

            handle.arrived_at = kernel.now
            channel_for(handle.endpoint).submit(
                Request(
                    duration=handle.seconds,
                    label=handle.label,
                    on_complete=on_complete,
                    failed=handle.failed,
                )
            )

        def _schedule_arrival(node: _Node) -> None:
            handle = node.handle
            # The delay (retry backoff) starts once the dependencies
            # complete — i.e. now — and the release floor still applies.
            kernel.schedule_at(
                max(handle.release, kernel.now + handle.delay),
                lambda: arrive(node),
            )

        for node in nodes:
            if node.pending == 0:
                _schedule_arrival(node)
        elapsed = kernel.run()
        unfinished = [n.handle for n in nodes if n.handle.completed_at < 0]
        if unfinished:  # pragma: no cover - guarded by the cycle check
            raise SimulationError(
                f"{len(unfinished)} request(s) never completed"
            )
        self._channel_stats = {
            name: channel.stats for name, channel in channels.items()
        }
        return elapsed
