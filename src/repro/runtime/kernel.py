"""Deterministic discrete-event simulation kernel.

The federated execution layer reasons about time in *simulated* seconds
(:mod:`repro.federation.network`), and until this kernel existed every
request was implicitly serial: the network model summed durations into a
flat total.  A real federation engine overlaps independent sub-queries,
so wire time is a *makespan* — the completion time of the last request
under per-endpoint concurrency limits — not a sum.

:class:`SimKernel` is the smallest machinery that computes such
makespans deterministically: a virtual clock plus a priority queue of
timestamped events.  Events firing at the same virtual instant run in
scheduling order (a monotonic sequence number breaks ties), so a
simulation's outcome is a pure function of the order in which events
were scheduled — no wall clock, no randomness, reproducible across
machines and Python versions.  Waiting is an event like any other:
retry-backoff delays enter the simulation as later
:meth:`SimKernel.schedule_at` arrival times (see
:mod:`repro.runtime.scheduler`), so fault recovery needs no kernel
support beyond the clock itself.

One kernel may drive *many* concurrent queries: the multi-tenant
scheduler (:mod:`repro.runtime.multi`) replays every tenant's request
DAG through one shared kernel and one channel per endpoint, so
coordinators genuinely contend on the same virtual clock.  The only
kernel-level nicety that needs is :meth:`SimKernel.defer` — scheduling
a follow-up at the *current* instant, ordered after every event already
queued for that instant — which is how a query admitted the moment
another finishes starts after the finisher's completion cascade has
fully run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

from repro.errors import SimulationError

__all__ = ["SimKernel"]


class SimKernel:
    """A virtual clock driving a time-ordered event queue.

    Events are ``(time, seq, callback)`` entries on a heap; :meth:`run`
    pops them in ``(time, seq)`` order, advancing :attr:`now` to each
    event's timestamp before invoking its callback.  Callbacks may
    schedule further events (at or after the current instant), which is
    how channels model request completion cascades.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: List[Tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past: delay={delay}"
            )
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at absolute virtual ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"causality violation: event at t={time} scheduled while "
                f"the clock reads t={self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def defer(self, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at the current instant, after every
        event already queued for it.

        Equivalent to ``schedule(0.0, callback)``; the monotonic
        sequence number places the callback behind all same-time
        events, so a deferred action observes the fully-settled state
        of the instant that triggered it (e.g. admitting the next
        waiting query only after the finishing query's completion
        cascade has released its dependents).
        """
        self.schedule_at(self.now, callback)

    def run(self) -> float:
        """Drain the event queue; returns the final clock (the makespan).

        The clock never rewinds: each popped event advances :attr:`now`
        to its timestamp (events are popped in time order, ties in
        scheduling order).
        """
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            callback()
        return self.now
