"""Deterministic discrete-event runtime for overlap-aware scheduling.

The simulation layer beneath the federation stack's parallel execution
mode:

* :mod:`repro.runtime.kernel` — the event-queue/virtual-clock kernel;
* :mod:`repro.runtime.channel` — per-endpoint request channels with
  configurable service concurrency and in-flight windows;
* :mod:`repro.runtime.scheduler` — the two-phase overlap scheduler:
  records a dependency DAG of priced requests during execution, then
  replays it through the kernel into a makespan (``elapsed_seconds``),
  the concurrency-aware counterpart of the network model's summed
  ``busy_seconds``;
* :mod:`repro.runtime.multi` — the multi-tenant query scheduler:
  N queries' DAGs replayed through one shared kernel and one channel
  per endpoint, with pluggable backlog fairness and admission control;
* :mod:`repro.runtime.control` — AIMD adaptive concurrency control
  tuning per-channel in-flight windows and the bound-join batch size
  from live queueing delay and service-time variance.
"""

from repro.runtime.channel import (
    Channel,
    ChannelStats,
    FifoDiscipline,
    QueueDiscipline,
    Request,
    WeightedRoundRobinDiscipline,
    make_discipline,
)
from repro.runtime.control import (
    AimdController,
    AimdSettings,
    WindowAdjustment,
)
from repro.runtime.kernel import SimKernel
from repro.runtime.multi import QueryScheduler, TenantRecorder
from repro.runtime.scheduler import (
    DEFAULT_CONCURRENCY,
    OverlapScheduler,
    RequestHandle,
)

__all__ = [
    "AimdController",
    "AimdSettings",
    "DEFAULT_CONCURRENCY",
    "Channel",
    "ChannelStats",
    "FifoDiscipline",
    "OverlapScheduler",
    "QueryScheduler",
    "QueueDiscipline",
    "Request",
    "RequestHandle",
    "SimKernel",
    "TenantRecorder",
    "WeightedRoundRobinDiscipline",
    "WindowAdjustment",
    "make_discipline",
]
