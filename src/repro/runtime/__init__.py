"""Deterministic discrete-event runtime for overlap-aware scheduling.

The simulation layer beneath the federation stack's parallel execution
mode:

* :mod:`repro.runtime.kernel` — the event-queue/virtual-clock kernel;
* :mod:`repro.runtime.channel` — per-endpoint request channels with
  configurable service concurrency and in-flight windows;
* :mod:`repro.runtime.scheduler` — the two-phase overlap scheduler:
  records a dependency DAG of priced requests during execution, then
  replays it through the kernel into a makespan (``elapsed_seconds``),
  the concurrency-aware counterpart of the network model's summed
  ``busy_seconds``.
"""

from repro.runtime.channel import Channel, ChannelStats, Request
from repro.runtime.kernel import SimKernel
from repro.runtime.scheduler import (
    DEFAULT_CONCURRENCY,
    OverlapScheduler,
    RequestHandle,
)

__all__ = [
    "DEFAULT_CONCURRENCY",
    "Channel",
    "ChannelStats",
    "OverlapScheduler",
    "Request",
    "RequestHandle",
    "SimKernel",
]
