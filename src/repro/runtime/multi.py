"""Multi-tenant concurrent query scheduling on one shared kernel.

The :class:`~repro.runtime.scheduler.OverlapScheduler` replays exactly
one query's request DAG per :class:`~repro.runtime.kernel.SimKernel`.
A PDMS answers queries for *many* peers at once, so this module runs N
prepared queries' DAGs through **one shared kernel and one channel per
endpoint**: coordinators genuinely contend, per-endpoint queues
interleave requests from different tenants under the same
``concurrency``/``max_in_flight`` limits, and deterministic
tie-breaking is preserved — arrival ties still break on global
submission order, so the whole contention pattern is a pure function
of the recorded DAGs.

Three layers of policy stack on the shared replay:

* **Fairness** — each channel's coordinator-side backlog is ordered by
  a pluggable :class:`~repro.runtime.channel.QueueDiscipline` (FIFO or
  weighted round-robin across tenants), so one tenant's burst cannot
  starve the others; per-tenant
  :class:`~repro.runtime.channel.ChannelStats` make starvation
  measurable.
* **Admission control** — at most ``max_active`` queries run
  concurrently; later tenants wait (in registration order) until a
  running query's last request completes, and their waiting time is
  reported as :meth:`QueryScheduler.admission_wait`.
* **Adaptive concurrency** — an optional
  :class:`~repro.runtime.control.AimdController` retunes every
  channel's in-flight window from live queueing delay and service-time
  variance as the replay progresses.

Recording is unchanged: each tenant's executor records onto a
:class:`TenantRecorder` exactly as it would onto an
``OverlapScheduler`` — the recorder only tags handles with the tenant
and forwards them to the shared DAG.  Because tenants record
sequentially, a tenant's dependencies always point at its own earlier
handles, and global submission indices remain topologically sorted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.runtime.channel import (
    Channel,
    ChannelStats,
    Request,
    make_discipline,
)
from repro.runtime.control import AimdController
from repro.runtime.kernel import SimKernel
from repro.runtime.scheduler import DEFAULT_CONCURRENCY, RequestHandle

__all__ = ["QueryScheduler", "TenantRecorder"]


@dataclass
class _Node:
    """Replay bookkeeping for one handle."""

    handle: RequestHandle
    pending: int = 0
    dependents: List["_Node"] = field(default_factory=list)


class TenantRecorder:
    """One tenant's recording facade over a shared :class:`QueryScheduler`.

    Implements the same recording/reading surface the federated
    executor uses on an ``OverlapScheduler`` — :meth:`submit`,
    :meth:`makespan`, :meth:`channel_stats`, :meth:`timeline` — but
    every handle is tagged with the tenant and lands in the shared DAG.
    ``makespan`` and ``channel_stats`` report the *tenant's* view of
    the shared replay: its completion time (admission wait included)
    and its share of each channel's statistics.
    """

    def __init__(self, parent: "QueryScheduler", name: str, weight: int):
        self.parent = parent
        self.name = name
        self.weight = weight

    def submit(
        self,
        endpoint: str,
        seconds: float,
        after: Sequence[RequestHandle] = (),
        release: float = 0.0,
        label: str = "",
        delay: float = 0.0,
        failed: bool = False,
    ) -> RequestHandle:
        """Record one request into the shared multi-tenant DAG."""
        return self.parent._submit(
            self.name, endpoint, seconds, after, release, label, delay,
            failed,
        )

    def makespan(self) -> float:
        """This tenant's completion time on the shared clock."""
        return self.parent.tenant_makespan(self.name)

    def channel_stats(self) -> Dict[str, ChannelStats]:
        """This tenant's share of each channel's statistics."""
        return self.parent.tenant_channel_stats(self.name)

    def timeline(self) -> List[RequestHandle]:
        """This tenant's handles, in submission order."""
        return [
            handle
            for handle in self.parent.timeline()
            if handle.tenant == self.name
        ]


class QueryScheduler:
    """Replays N tenants' request DAGs through one shared kernel.

    Args:
        concurrency: service lanes per endpoint channel.
        max_in_flight: per-endpoint outstanding-request window
            (``None`` = unbounded; the controller overrides this with
            its adaptive start window when attached).
        per_endpoint_concurrency: optional per-endpoint lane overrides.
        discipline: backlog admission policy — ``"fifo"`` or ``"wrr"``
            (weighted round-robin across tenants, weights from
            :meth:`tenant` registration).
        max_active: admission cap on concurrently active queries
            (``None`` = all tenants start at t=0).
        controller: optional AIMD window controller; observes every
            completion and retunes channel windows inside the replay.
    """

    def __init__(
        self,
        concurrency: int = DEFAULT_CONCURRENCY,
        max_in_flight: Optional[int] = None,
        per_endpoint_concurrency: Optional[Dict[str, int]] = None,
        discipline: str = "fifo",
        max_active: Optional[int] = None,
        controller: Optional[AimdController] = None,
    ) -> None:
        if concurrency < 1:
            raise SimulationError(
                f"scheduler concurrency must be >= 1: {concurrency}"
            )
        if max_in_flight is not None and max_in_flight < concurrency:
            raise SimulationError(
                f"max_in_flight ({max_in_flight}) below concurrency "
                f"({concurrency}) would waste service lanes"
            )
        if max_active is not None and max_active < 1:
            raise SimulationError(
                f"max_active must be >= 1: {max_active}"
            )
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        self.per_endpoint_concurrency = dict(per_endpoint_concurrency or {})
        self.discipline = discipline
        self.max_active = max_active
        self.controller = controller
        self._tenants: List[TenantRecorder] = []
        self._weights: Dict[str, int] = {}
        self._handles: List[RequestHandle] = []
        self._channel_stats: Dict[str, ChannelStats] = {}
        self._tenant_channel_stats: Dict[str, Dict[str, ChannelStats]] = {}
        self._activated_at: Dict[str, float] = {}
        self._finished_at: Dict[str, float] = {}
        self._active_peak = 0
        self._makespan: Optional[float] = None
        # Fail fast on an unknown policy name, not mid-replay.
        make_discipline(discipline)

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Registered tenant names in registration (admission) order."""
        return tuple(recorder.name for recorder in self._tenants)

    def tenant(self, name: str, weight: int = 1) -> TenantRecorder:
        """Register one tenant; returns its recording facade.

        Registration order is the admission order under ``max_active``
        and the deterministic tie-breaker everywhere else.  ``weight``
        feeds the weighted-round-robin discipline (ignored by FIFO).
        """
        if any(recorder.name == name for recorder in self._tenants):
            raise SimulationError(f"duplicate tenant name: {name!r}")
        if weight < 1:
            raise SimulationError(
                f"tenant {name!r} weight must be >= 1: {weight}"
            )
        recorder = TenantRecorder(self, name, weight)
        self._tenants.append(recorder)
        self._weights[name] = weight
        return recorder

    def _submit(
        self,
        tenant: str,
        endpoint: str,
        seconds: float,
        after: Sequence[RequestHandle],
        release: float,
        label: str,
        delay: float,
        failed: bool,
    ) -> RequestHandle:
        if seconds < 0:
            raise SimulationError(f"negative request duration: {seconds}")
        if delay < 0:
            raise SimulationError(f"negative request delay: {delay}")
        for dep in after:
            if dep.tenant != tenant:
                raise SimulationError(
                    f"tenant {tenant!r} may not depend on tenant "
                    f"{dep.tenant!r}'s request {dep.index}"
                )
        handle = RequestHandle(
            index=len(self._handles),
            endpoint=endpoint,
            seconds=seconds,
            after=tuple(after),
            release=release,
            delay=delay,
            label=label,
            failed=failed,
            tenant=tenant,
        )
        self._handles.append(handle)
        self._makespan = None  # DAG changed; replay again
        return handle

    # -- results --------------------------------------------------------

    def makespan(self) -> float:
        """Replay the shared DAG; returns the overall elapsed seconds.

        Idempotent: cached until the next submission.
        """
        if self._makespan is None:
            self._makespan = self._replay()
        return self._makespan

    def run(self) -> float:
        """Alias for :meth:`makespan` — replay and return the elapsed."""
        return self.makespan()

    def busy_seconds(self) -> float:
        """Summed request durations across every tenant."""
        return sum(handle.seconds for handle in self._handles)

    def tenant_makespan(self, name: str) -> float:
        """One tenant's completion time (admission wait included)."""
        self.makespan()
        return self._finished_at.get(name, 0.0)

    def admission_wait(self, name: str) -> float:
        """Seconds a tenant waited for an active-query slot."""
        self.makespan()
        return self._activated_at.get(name, 0.0)

    @property
    def active_peak(self) -> int:
        """Maximum concurrently active queries of the last replay."""
        self.makespan()
        return self._active_peak

    def channel_stats(self) -> Dict[str, ChannelStats]:
        """Per-endpoint aggregate statistics of the last replay."""
        self.makespan()
        return dict(self._channel_stats)

    def tenant_channel_stats(self, name: str) -> Dict[str, ChannelStats]:
        """One tenant's share of each channel's statistics."""
        self.makespan()
        return dict(self._tenant_channel_stats.get(name, {}))

    def timeline(self) -> List[RequestHandle]:
        """All handles in submission order with replayed timelines."""
        self.makespan()
        return list(self._handles)

    # -- replay ---------------------------------------------------------

    def _replay(self) -> float:
        kernel = SimKernel()
        channels: Dict[str, Channel] = {}
        controller = self.controller
        nodes = [_Node(handle) for handle in self._handles]
        roots: Dict[str, List[_Node]] = {
            recorder.name: [] for recorder in self._tenants
        }
        remaining: Dict[str, int] = {
            recorder.name: 0 for recorder in self._tenants
        }
        for node in nodes:
            tenant = node.handle.tenant
            if tenant not in remaining:
                raise SimulationError(
                    f"handle {node.handle.index} belongs to unregistered "
                    f"tenant {tenant!r}"
                )
            remaining[tenant] += 1
            node.pending = len(node.handle.after)
            for dep in node.handle.after:
                if dep.index >= node.handle.index:
                    raise SimulationError(
                        "dependency cycle: a request may only depend on "
                        "earlier submissions"
                    )
                nodes[dep.index].dependents.append(node)
            if node.pending == 0:
                roots[tenant].append(node)

        def channel_for(name: str) -> Channel:
            channel = channels.get(name)
            if channel is None:
                lanes = self.per_endpoint_concurrency.get(
                    name, self.concurrency
                )
                window = self.max_in_flight
                observer = None
                if controller is not None:
                    window = controller.initial_window(lanes)
                    observer = controller.observe
                channel = Channel(
                    kernel,
                    name,
                    concurrency=lanes,
                    max_in_flight=window,
                    discipline=make_discipline(
                        self.discipline, self._weights
                    ),
                    observer=observer,
                )
                channels[name] = channel
            return channel

        pending_tenants: Deque[TenantRecorder] = deque(self._tenants)
        active: Set[str] = set()
        activated: Dict[str, float] = {}
        finished: Dict[str, float] = {}
        self._active_peak = 0

        def finish(tenant: str) -> None:
            finished[tenant] = kernel.now
            active.discard(tenant)
            if pending_tenants:
                # Deferred so the admitted query's first arrivals sort
                # after the finishing query's completion cascade.
                kernel.defer(admit_next)

        def admit_next() -> None:
            while pending_tenants and (
                self.max_active is None or len(active) < self.max_active
            ):
                activate(pending_tenants.popleft())

        def activate(recorder: TenantRecorder) -> None:
            tenant = recorder.name
            activated[tenant] = kernel.now
            active.add(tenant)
            self._active_peak = max(self._active_peak, len(active))
            if remaining[tenant] == 0:
                # A tenant with no recorded requests completes at its
                # activation instant (e.g. a fully local query).
                finish(tenant)
                return
            for node in roots[tenant]:
                _schedule_arrival(node)

        def arrive(node: _Node) -> None:
            handle = node.handle
            tenant = handle.tenant

            def on_complete(request: Request) -> None:
                handle.started_at = request.started_at
                handle.completed_at = request.completed_at
                remaining[tenant] -= 1
                for dependent in node.dependents:
                    dependent.pending -= 1
                    if dependent.pending == 0:
                        _schedule_arrival(dependent)
                if remaining[tenant] == 0:
                    finish(tenant)

            handle.arrived_at = kernel.now
            channel_for(handle.endpoint).submit(
                Request(
                    duration=handle.seconds,
                    label=handle.label,
                    tenant=tenant,
                    on_complete=on_complete,
                    failed=handle.failed,
                )
            )

        def _schedule_arrival(node: _Node) -> None:
            handle = node.handle
            # Release floors are relative to the query's own start:
            # shifted by the tenant's activation time under admission
            # control.  The delay (retry backoff) starts once the
            # dependencies complete — i.e. now.
            floor = activated[handle.tenant] + handle.release
            kernel.schedule_at(
                max(floor, kernel.now + handle.delay),
                lambda: arrive(node),
            )

        admit_next()
        elapsed = kernel.run()
        unfinished = [n.handle for n in nodes if n.handle.completed_at < 0]
        if unfinished:  # pragma: no cover - guarded by the cycle check
            raise SimulationError(
                f"{len(unfinished)} request(s) never completed"
            )
        stuck = [name for name in remaining if name not in finished]
        if stuck:  # pragma: no cover - every path above calls finish()
            raise SimulationError(f"queries never finished: {stuck}")
        self._channel_stats = {
            name: channel.stats for name, channel in channels.items()
        }
        self._tenant_channel_stats = {
            recorder.name: {} for recorder in self._tenants
        }
        for name, channel in channels.items():
            for tenant, stats in channel.tenant_stats.items():
                self._tenant_channel_stats.setdefault(tenant, {})[name] = (
                    stats
                )
        self._activated_at = activated
        self._finished_at = finished
        return elapsed
