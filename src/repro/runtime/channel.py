"""Per-endpoint channels: concurrency-limited request service.

A :class:`Channel` models one endpoint's request pipe inside a
:class:`~repro.runtime.kernel.SimKernel` simulation.  It has

* ``concurrency`` service lanes — how many requests the endpoint serves
  simultaneously (a SPARQL endpoint's worker pool); a request occupies a
  lane for its whole duration;
* an optional ``max_in_flight`` window — how many requests the
  coordinator may have outstanding (serving + queued at the endpoint) at
  once; requests beyond the window wait in a coordinator-side backlog
  and are only *sent* (admitted) when a slot frees.

Admission from the backlog follows a pluggable :class:`QueueDiscipline`.
The default :class:`FifoDiscipline` preserves arrival order, so with a
single coordinator the window bounds queue depth and shifts per-request
wait accounting without reordering completions.  Under *multi-tenant*
contention (several coordinators recording onto one channel, PR 10's
:class:`~repro.runtime.multi.QueryScheduler`) the discipline is the
fairness policy: :class:`WeightedRoundRobinDiscipline` cycles admission
across tenants with per-tenant weights, so one tenant's burst cannot
starve the others, and per-tenant :class:`ChannelStats`
(:attr:`Channel.tenant_stats`) make any residual starvation measurable.

The window itself may be retuned mid-simulation via
:meth:`Channel.set_window` — the hook the AIMD controller
(:mod:`repro.runtime.control`) uses to adapt the in-flight window from
live queueing delay and service-time variance; growth admits backlogged
requests at the current virtual instant, shrinkage only throttles
future admissions (already-admitted requests are never recalled).

Channels do no network *pricing* — durations are computed by the caller
(from :class:`~repro.federation.network.NetworkModel`) and arrive on the
:class:`Request`; the channel only decides *when* each request starts
and completes under contention.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.runtime.kernel import SimKernel

__all__ = [
    "Channel",
    "ChannelStats",
    "FifoDiscipline",
    "QueueDiscipline",
    "Request",
    "WeightedRoundRobinDiscipline",
    "make_discipline",
]


@dataclass
class Request:
    """One simulated request: a duration plus its recorded timeline.

    Attributes:
        duration: service time in simulated seconds.
        label: free-form tag for traces (e.g. ``"bound b2"``).
        tenant: owning coordinator/query for multi-tenant accounting
            (empty for single-query simulations).
        on_complete: invoked (with the request) when service finishes.
        failed: the attempt carried an injected fault; it is served
            (and occupies a lane) like any other request — failures
            are charged like real traffic — but counted separately.
        arrived_at: when the coordinator handed it to the channel.
        admitted_at: when it entered the in-flight window (was "sent").
        started_at: when a service lane picked it up.
        completed_at: when service finished.
    """

    duration: float
    label: str = ""
    tenant: str = ""
    on_complete: Optional[Callable[["Request"], None]] = None
    failed: bool = False
    arrived_at: float = -1.0
    admitted_at: float = -1.0
    started_at: float = -1.0
    completed_at: float = -1.0

    @property
    def waited(self) -> float:
        """Seconds spent queued (arrival to service start)."""
        return self.started_at - self.arrived_at


@dataclass
class ChannelStats:
    """Aggregate service statistics of one channel (or one tenant's
    share of it).

    Attributes:
        completed: requests fully served (failed attempts included —
            an error reply or timeout still occupies the channel).
        failed: served requests that carried an injected fault.
        admitted: requests that entered the in-flight window (sent).
        busy_seconds: summed service time (lane-seconds of work).
        busy_seconds_sq: summed squared service time (for variance).
        wait_seconds: summed queueing time across requests.
        peak_in_flight: maximum simultaneous in-window requests.
        peak_backlog: maximum coordinator-side backlog length.
    """

    completed: int = 0
    failed: int = 0
    admitted: int = 0
    busy_seconds: float = 0.0
    busy_seconds_sq: float = 0.0
    wait_seconds: float = 0.0
    peak_in_flight: int = 0
    peak_backlog: int = 0

    def queueing_delay(self) -> float:
        """Mean seconds a completed request spent queued.

        The AIMD controller's congestion signal: queueing delay rising
        above the mean service time means requests wait on the window
        or the lanes longer than they are served.
        """
        if not self.completed:
            return 0.0
        return self.wait_seconds / self.completed

    def mean_service_seconds(self) -> float:
        """Mean service duration of completed requests."""
        if not self.completed:
            return 0.0
        return self.busy_seconds / self.completed

    def service_time_variance(self) -> float:
        """Population variance of completed request durations.

        High variance means lumpy traffic (a few huge transfers among
        small probes) — the controller treats it as a reason to keep
        the window conservative, since one large request behind a wide
        window stalls everything queued after it.
        """
        if not self.completed:
            return 0.0
        mean = self.busy_seconds / self.completed
        return max(0.0, self.busy_seconds_sq / self.completed - mean * mean)


class QueueDiscipline:
    """Admission order over the coordinator-side backlog.

    A discipline holds requests that did not fit the in-flight window
    and decides which one is *sent* when a window slot frees.  Both
    hooks run inside the virtual clock, so any deterministic policy
    keeps the whole simulation deterministic.
    """

    name = "fifo"

    def push(self, request: Request) -> None:
        raise NotImplementedError

    def pop(self) -> Request:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoDiscipline(QueueDiscipline):
    """Arrival-order admission — the single-tenant default."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[Request] = deque()

    def push(self, request: Request) -> None:
        self._queue.append(request)

    def pop(self) -> Request:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class WeightedRoundRobinDiscipline(QueueDiscipline):
    """Weighted round-robin admission across tenants.

    Tenants are visited in first-appearance order; a tenant with weight
    *w* may admit up to *w* requests per visit before the cursor moves
    on (classic weighted round-robin).  Requests of one tenant stay
    FIFO among themselves.  Appearance order, the cursor walk and the
    integer credits are all deterministic, so the policy preserves the
    kernel's replay determinism.
    """

    name = "wrr"

    def __init__(self, weights: Optional[Dict[str, int]] = None) -> None:
        for tenant, weight in (weights or {}).items():
            if weight < 1:
                raise SimulationError(
                    f"tenant {tenant!r} weight must be >= 1: {weight}"
                )
        self._weights = dict(weights or {})
        self._order: List[str] = []
        self._queues: Dict[str, Deque[Request]] = {}
        self._cursor = 0
        self._credit = 0
        self._size = 0

    def _weight(self, tenant: str) -> int:
        return self._weights.get(tenant, 1)

    def push(self, request: Request) -> None:
        queue = self._queues.get(request.tenant)
        if queue is None:
            queue = deque()
            self._queues[request.tenant] = queue
            self._order.append(request.tenant)
            if len(self._order) == 1:
                self._credit = self._weight(request.tenant)
        queue.append(request)
        self._size += 1

    def pop(self) -> Request:
        if not self._size:
            raise SimulationError("pop from an empty backlog")
        while True:
            tenant = self._order[self._cursor]
            queue = self._queues[tenant]
            if queue and self._credit > 0:
                self._credit -= 1
                self._size -= 1
                return queue.popleft()
            self._cursor = (self._cursor + 1) % len(self._order)
            self._credit = self._weight(self._order[self._cursor])

    def __len__(self) -> int:
        return self._size


def make_discipline(
    name: str, weights: Optional[Dict[str, int]] = None
) -> QueueDiscipline:
    """Build one backlog discipline instance by policy name."""
    if name == "fifo":
        return FifoDiscipline()
    if name == "wrr":
        return WeightedRoundRobinDiscipline(weights)
    raise SimulationError(
        f"unknown queue discipline {name!r}; expected 'fifo' or 'wrr'"
    )


class Channel:
    """Request service with ``concurrency`` lanes and a pluggable
    admission discipline.

    Args:
        kernel: the simulation kernel driving the clock.
        name: endpoint name (trace label only).
        concurrency: simultaneous service lanes (>= 1).
        max_in_flight: outstanding-request window (>= concurrency when
            given); ``None`` means unbounded.
        discipline: backlog admission policy (default FIFO).
        observer: called with ``(channel, request)`` after every
            completion's bookkeeping — the AIMD controller's feedback
            tap.  Runs before the freed slot is refilled, so a window
            adjustment made inside the observer governs which
            backlogged request (if any) is admitted next.
    """

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        concurrency: int = 1,
        max_in_flight: Optional[int] = None,
        discipline: Optional[QueueDiscipline] = None,
        observer: Optional[Callable[["Channel", Request], None]] = None,
    ) -> None:
        if concurrency < 1:
            raise SimulationError(
                f"channel concurrency must be >= 1: {concurrency}"
            )
        if max_in_flight is not None and max_in_flight < concurrency:
            raise SimulationError(
                f"max_in_flight ({max_in_flight}) below concurrency "
                f"({concurrency}) would waste service lanes"
            )
        self.kernel = kernel
        self.name = name
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        self.stats = ChannelStats()
        self.tenant_stats: Dict[str, ChannelStats] = {}
        self.observer = observer
        self._serving = 0
        self._queue: Deque[Request] = deque()  # admitted, awaiting a lane
        self._backlog = discipline if discipline is not None else (
            FifoDiscipline()
        )
        self._tenant_in_flight: Dict[str, int] = {}

    @property
    def in_flight(self) -> int:
        """Requests currently inside the window (serving + queued)."""
        return self._serving + len(self._queue)

    def submit(self, request: Request) -> None:
        """Hand a request to the channel at the current virtual time."""
        request.arrived_at = self.kernel.now
        if self._window_full():
            self._backlog.push(request)
            self.stats.peak_backlog = max(
                self.stats.peak_backlog, len(self._backlog)
            )
            return
        self._admit(request)

    def set_window(self, max_in_flight: Optional[int]) -> None:
        """Retune the in-flight window at the current virtual time.

        Growth admits backlogged requests immediately (under the
        discipline's order); shrinkage only throttles future
        admissions — requests already in the window are never
        recalled.  This is the AIMD controller's actuator.
        """
        if max_in_flight is not None and max_in_flight < self.concurrency:
            raise SimulationError(
                f"max_in_flight ({max_in_flight}) below concurrency "
                f"({self.concurrency}) would waste service lanes"
            )
        self.max_in_flight = max_in_flight
        while len(self._backlog) and not self._window_full():
            self._admit(self._backlog.pop())

    def _window_full(self) -> bool:
        if self.max_in_flight is None:
            return False
        return self.in_flight >= self.max_in_flight

    def _tenant(self, tenant: str) -> ChannelStats:
        stats = self.tenant_stats.get(tenant)
        if stats is None:
            stats = ChannelStats()
            self.tenant_stats[tenant] = stats
        return stats

    # -- internal event handlers ---------------------------------------

    def _admit(self, request: Request) -> None:
        request.admitted_at = self.kernel.now
        self.stats.admitted += 1
        tstats = self._tenant(request.tenant)
        tstats.admitted += 1
        in_flight = self._tenant_in_flight.get(request.tenant, 0) + 1
        self._tenant_in_flight[request.tenant] = in_flight
        tstats.peak_in_flight = max(tstats.peak_in_flight, in_flight)
        if self._serving < self.concurrency:
            self._start(request)
        else:
            self._queue.append(request)
        self.stats.peak_in_flight = max(
            self.stats.peak_in_flight, self.in_flight
        )

    def _start(self, request: Request) -> None:
        request.started_at = self.kernel.now
        self._serving += 1
        self.kernel.schedule(request.duration, lambda: self._complete(request))

    def _account(self, stats: ChannelStats, request: Request) -> None:
        stats.completed += 1
        if request.failed:
            stats.failed += 1
        stats.busy_seconds += request.duration
        stats.busy_seconds_sq += request.duration * request.duration
        stats.wait_seconds += request.waited

    def _complete(self, request: Request) -> None:
        request.completed_at = self.kernel.now
        self._serving -= 1
        self._account(self.stats, request)
        self._account(self._tenant(request.tenant), request)
        self._tenant_in_flight[request.tenant] -= 1
        if self.observer is not None:
            self.observer(self, request)
        if self._queue:
            self._start(self._queue.popleft())
        if len(self._backlog) and not self._window_full():
            self._admit(self._backlog.pop())
        if request.on_complete is not None:
            request.on_complete(request)

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, concurrency={self.concurrency}, "
            f"in_flight={self.in_flight})"
        )
