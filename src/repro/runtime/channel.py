"""Per-endpoint channels: concurrency-limited request service.

A :class:`Channel` models one endpoint's request pipe inside a
:class:`~repro.runtime.kernel.SimKernel` simulation.  It has

* ``concurrency`` service lanes — how many requests the endpoint serves
  simultaneously (a SPARQL endpoint's worker pool); a request occupies a
  lane for its whole duration;
* an optional ``max_in_flight`` window — how many requests the
  coordinator may have outstanding (serving + queued at the endpoint) at
  once; requests beyond the window wait in a coordinator-side backlog
  and are only *sent* (admitted) when a slot frees.

Admission and service are FIFO, so with a single coordinator the window
bounds queue depth and shifts per-request wait accounting without
reordering completions; the knob matters for the recorded timelines and
for peak-load statistics (:attr:`ChannelStats.peak_in_flight`), which is
exactly what capacity planning reads.

Channels do no network *pricing* — durations are computed by the caller
(from :class:`~repro.federation.network.NetworkModel`) and arrive on the
:class:`Request`; the channel only decides *when* each request starts
and completes under contention.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import SimulationError
from repro.runtime.kernel import SimKernel

__all__ = ["Channel", "ChannelStats", "Request"]


@dataclass
class Request:
    """One simulated request: a duration plus its recorded timeline.

    Attributes:
        duration: service time in simulated seconds.
        label: free-form tag for traces (e.g. ``"bound b2"``).
        on_complete: invoked (with the request) when service finishes.
        failed: the attempt carried an injected fault; it is served
            (and occupies a lane) like any other request — failures
            are charged like real traffic — but counted separately.
        arrived_at: when the coordinator handed it to the channel.
        admitted_at: when it entered the in-flight window (was "sent").
        started_at: when a service lane picked it up.
        completed_at: when service finished.
    """

    duration: float
    label: str = ""
    on_complete: Optional[Callable[["Request"], None]] = None
    failed: bool = False
    arrived_at: float = -1.0
    admitted_at: float = -1.0
    started_at: float = -1.0
    completed_at: float = -1.0

    @property
    def waited(self) -> float:
        """Seconds spent queued (arrival to service start)."""
        return self.started_at - self.arrived_at


@dataclass
class ChannelStats:
    """Aggregate service statistics of one channel.

    Attributes:
        completed: requests fully served (failed attempts included —
            an error reply or timeout still occupies the channel).
        failed: served requests that carried an injected fault.
        busy_seconds: summed service time (lane-seconds of work).
        wait_seconds: summed queueing time across requests.
        peak_in_flight: maximum simultaneous in-window requests.
        peak_backlog: maximum coordinator-side backlog length.
    """

    completed: int = 0
    failed: int = 0
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0
    peak_in_flight: int = 0
    peak_backlog: int = 0


class Channel:
    """FIFO request service with ``concurrency`` lanes.

    Args:
        kernel: the simulation kernel driving the clock.
        name: endpoint name (trace label only).
        concurrency: simultaneous service lanes (>= 1).
        max_in_flight: outstanding-request window (>= concurrency when
            given); ``None`` means unbounded.
    """

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        concurrency: int = 1,
        max_in_flight: Optional[int] = None,
    ) -> None:
        if concurrency < 1:
            raise SimulationError(
                f"channel concurrency must be >= 1: {concurrency}"
            )
        if max_in_flight is not None and max_in_flight < concurrency:
            raise SimulationError(
                f"max_in_flight ({max_in_flight}) below concurrency "
                f"({concurrency}) would waste service lanes"
            )
        self.kernel = kernel
        self.name = name
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        self.stats = ChannelStats()
        self._serving = 0
        self._queue: Deque[Request] = deque()  # admitted, awaiting a lane
        self._backlog: Deque[Request] = deque()  # outside the window

    @property
    def in_flight(self) -> int:
        """Requests currently inside the window (serving + queued)."""
        return self._serving + len(self._queue)

    def submit(self, request: Request) -> None:
        """Hand a request to the channel at the current virtual time."""
        request.arrived_at = self.kernel.now
        if self._window_full():
            self._backlog.append(request)
            self.stats.peak_backlog = max(
                self.stats.peak_backlog, len(self._backlog)
            )
            return
        self._admit(request)

    def _window_full(self) -> bool:
        if self.max_in_flight is None:
            return False
        return self.in_flight >= self.max_in_flight

    # -- internal event handlers ---------------------------------------

    def _admit(self, request: Request) -> None:
        request.admitted_at = self.kernel.now
        if self._serving < self.concurrency:
            self._start(request)
        else:
            self._queue.append(request)
        self.stats.peak_in_flight = max(
            self.stats.peak_in_flight, self.in_flight
        )

    def _start(self, request: Request) -> None:
        request.started_at = self.kernel.now
        self._serving += 1
        self.kernel.schedule(request.duration, lambda: self._complete(request))

    def _complete(self, request: Request) -> None:
        request.completed_at = self.kernel.now
        self._serving -= 1
        self.stats.completed += 1
        if request.failed:
            self.stats.failed += 1
        self.stats.busy_seconds += request.duration
        self.stats.wait_seconds += request.waited
        if self._queue:
            self._start(self._queue.popleft())
        if self._backlog and not self._window_full():
            self._admit(self._backlog.popleft())
        if request.on_complete is not None:
            request.on_complete(request)

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, concurrency={self.concurrency}, "
            f"in_flight={self.in_flight})"
        )
