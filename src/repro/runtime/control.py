"""Adaptive concurrency control: AIMD window and batch-size tuning.

PR 4 gave the runtime fixed constructor knobs — a per-endpoint
``max_in_flight`` window and a bound-join ``batch_size`` — and PR 9's
:class:`~repro.runtime.channel.ChannelStats` started recording exactly
the signals a controller needs to tune them: per-request queueing delay
and service durations.  This module closes the loop, in the style of
ANAPSID's adaptive request dispatch and TCP's AIMD congestion window:

* :class:`AimdController` watches every completion on a channel (the
  :attr:`~repro.runtime.channel.Channel.observer` hook) and, once per
  *epoch* of completions, compares the epoch's mean queueing delay
  against its mean service time.  Congestion — waiting longer than
  being served, scaled by :attr:`AimdSettings.congestion_ratio` and
  sharpened when service-time variance is high — multiplicatively
  shrinks the channel's in-flight window; a calm epoch additively grows
  it.  Adjustments happen *inside the virtual clock* via
  :meth:`~repro.runtime.channel.Channel.set_window`, so the window a
  request sees depends on the live contention that preceded it.

* :meth:`AimdController.recommend_batch` is the between-waves half:
  after a full replay it reads the aggregate channel statistics and
  recommends the next planning round's bound-join batch size — larger
  batches (fewer, heavier messages) when queueing dominates, smaller
  batches (more overlap) when lanes sit idle.

Everything is a pure function of the replayed event order: no wall
clock, no randomness.  Re-running the same recorded DAGs reproduces
every adjustment byte-for-byte, which the multi-tenant determinism
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.runtime.channel import Channel, ChannelStats, Request

__all__ = ["AimdController", "AimdSettings", "WindowAdjustment"]


@dataclass(frozen=True)
class AimdSettings:
    """Tuning constants of the AIMD window controller.

    Attributes:
        epoch: completions per adjustment window (>= 1).
        increase: additive window growth after a calm epoch.
        decrease: multiplicative back-off factor on congestion
            (0 < decrease < 1).
        congestion_ratio: an epoch is congested when its mean queueing
            delay exceeds ``congestion_ratio`` times its mean service
            time (halved when service-time variance exceeds the
            squared mean — lumpy traffic tolerates less queueing).
        start_window: initial in-flight window per channel (clamped
            below by the channel's lane count).
        max_window: upper bound on the adapted window.
        batch_min/batch_max: clamp for :meth:`recommend_batch`.
    """

    epoch: int = 4
    increase: int = 2
    decrease: float = 0.5
    congestion_ratio: float = 1.0
    start_window: int = 4
    max_window: int = 64
    batch_min: int = 8
    batch_max: int = 256

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise SimulationError(f"epoch must be >= 1: {self.epoch}")
        if not 0.0 < self.decrease < 1.0:
            raise SimulationError(
                f"decrease must be in (0, 1): {self.decrease}"
            )
        if self.increase < 1:
            raise SimulationError(f"increase must be >= 1: {self.increase}")
        if self.start_window < 1 or self.max_window < self.start_window:
            raise SimulationError(
                f"window bounds invalid: start={self.start_window} "
                f"max={self.max_window}"
            )


@dataclass
class WindowAdjustment:
    """One controller decision: a window change on one channel.

    ``epoch_start``/``at`` bound the completion epoch that triggered
    the decision on the virtual clock — the ``controller:`` span the
    trace export renders.
    """

    channel: str
    epoch_start: float
    at: float
    before: int
    after: int
    congested: bool
    queueing_delay: float
    service_variance: float


@dataclass
class _Epoch:
    """Per-channel accumulator for the current completion epoch."""

    started_at: float = 0.0
    completions: int = 0
    wait_seconds: float = 0.0
    busy_seconds: float = 0.0
    busy_seconds_sq: float = 0.0


class AimdController:
    """Additive-increase / multiplicative-decrease window control.

    One controller instance serves every channel of one replay; attach
    it by passing ``observer=controller.observe`` (and
    ``max_in_flight=controller.initial_window(...)``) when building
    channels — :class:`~repro.runtime.multi.QueryScheduler` does both
    when given a controller.
    """

    def __init__(self, settings: Optional[AimdSettings] = None) -> None:
        self.settings = settings if settings is not None else AimdSettings()
        self.adjustments: List[WindowAdjustment] = []
        self.epochs: int = 0
        self._state: Dict[str, _Epoch] = {}

    def initial_window(self, concurrency: int) -> int:
        """The window a channel starts from (never below its lanes)."""
        return max(concurrency, self.settings.start_window)

    def observe(self, channel: Channel, request: Request) -> None:
        """Digest one completion; adjust the window on epoch boundaries.

        Runs inside the virtual clock (the channel's completion
        handler), before the freed slot is refilled — so a shrink
        decided here keeps the next backlogged request out of the
        window, and a growth admits more of the backlog at this very
        instant.
        """
        state = self._state.get(channel.name)
        if state is None:
            state = _Epoch(started_at=channel.kernel.now)
            self._state[channel.name] = state
        if state.completions == 0:
            state.started_at = min(state.started_at, request.arrived_at)
        state.completions += 1
        state.wait_seconds += request.waited
        state.busy_seconds += request.duration
        state.busy_seconds_sq += request.duration * request.duration
        if state.completions < self.settings.epoch:
            return
        self._adjust(channel, state)
        self._state[channel.name] = _Epoch(started_at=channel.kernel.now)

    def _adjust(self, channel: Channel, state: _Epoch) -> None:
        settings = self.settings
        self.epochs += 1
        completions = state.completions
        delay = state.wait_seconds / completions
        mean = state.busy_seconds / completions
        variance = max(
            0.0, state.busy_seconds_sq / completions - mean * mean
        )
        # Lumpy service times tolerate less queueing: one oversized
        # transfer behind a wide window stalls the whole queue, so the
        # congestion threshold halves when the spread exceeds the mean.
        ratio = settings.congestion_ratio
        if mean > 0.0 and variance > mean * mean:
            ratio /= 2.0
        congested = delay > ratio * mean
        before = (
            channel.max_in_flight
            if channel.max_in_flight is not None
            else settings.max_window
        )
        if congested:
            after = max(
                channel.concurrency, int(before * settings.decrease)
            )
        else:
            after = min(settings.max_window, before + settings.increase)
        if after != before:
            channel.set_window(after)
            self.adjustments.append(
                WindowAdjustment(
                    channel=channel.name,
                    epoch_start=state.started_at,
                    at=channel.kernel.now,
                    before=before,
                    after=after,
                    congested=congested,
                    queueing_delay=delay,
                    service_variance=variance,
                )
            )

    def recommend_batch(
        self, channel_stats: Dict[str, ChannelStats], current: int
    ) -> int:
        """Next planning round's bound-join batch size.

        Reads the aggregate statistics of a finished replay: when
        queueing delay dominates service time the endpoints are
        saturated, so the controller doubles the batch (fewer, heavier
        messages cut per-message latency overhead and queue slots);
        when requests barely wait, it halves the batch to manufacture
        overlap for the idle lanes.  The result is clamped to
        ``[batch_min, batch_max]`` and returned unchanged in the
        comfortable middle band.
        """
        completed = sum(s.completed for s in channel_stats.values())
        if not completed or current < 1:
            return current
        wait = sum(s.wait_seconds for s in channel_stats.values())
        busy = sum(s.busy_seconds for s in channel_stats.values())
        delay = wait / completed
        mean = busy / completed
        settings = self.settings
        if delay > mean:
            return min(settings.batch_max, current * 2)
        if delay < mean / 4.0:
            return max(settings.batch_min, current // 2)
        return current
