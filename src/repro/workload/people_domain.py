"""A FOAF-style people/social domain at configurable scale.

A second realistic workload (beyond the film domain) exercising both
mapping kinds: two address-book peers describing overlapping people with
different vocabularies (``vcard:`` vs ``foaf:``), plus a social peer
with friendship edges.  The assertion set includes a *join-shaped*
assertion (two-pattern source body), which — unlike the film example —
induces a non-linear TGD; useful for testing the Proposition-2 boundary.
"""

from __future__ import annotations

import random
from typing import List

from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import FOAF_NS, Namespace, OWL_SAME_AS
from repro.rdf.terms import Literal, Variable
from repro.rdf.triples import Triple
from repro.peers.mappings import GraphMappingAssertion
from repro.peers.system import RPS

__all__ = ["VCARD", "SOCIAL", "people_rps", "friend_of_friend_assertion"]

VCARD = Namespace("http://vcard.example.org/")
SOCIAL = Namespace("http://social.example.org/")


def friend_of_friend_assertion() -> GraphMappingAssertion:
    """``(x, knows, z) AND (z, knows, y) ⇝ (x, reachable, y)``.

    A join-shaped source body: the induced TGD has a repeated body
    variable z, so the assertion set is *not* sticky (the paper's
    Section-4 example has exactly this shape).
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    source = GraphPatternQuery(
        (x, y),
        make_pattern((x, SOCIAL.knows, z), (z, SOCIAL.knows, y)),
        name="Qfof",
    )
    target = GraphPatternQuery(
        (x, y), make_pattern((x, SOCIAL.reachable, y)), name="Qreach"
    )
    return GraphMappingAssertion(
        source, target,
        source_peer="social", target_peer="social",
        label="friend-of-friend",
    )


def people_rps(
    people: int = 20,
    knows_edges: int = 40,
    linked_fraction: float = 0.5,
    include_fof: bool = True,
    seed: int = 0,
) -> RPS:
    """Build the people-domain RPS.

    Peers:

    * ``vcard`` — ``vcard:personN vcard:fullName "Person N"``;
    * ``foaf``  — ``foaf:agentN foaf:name "Person N"`` + ages;
    * ``social`` — ``social:userN social:knows social:userM`` edges.

    Mappings:

    * assertion ``(x, vcard:fullName, y) ⇝ (x, foaf:name, y)``
      (vocabulary translation, linear);
    * optional friend-of-friend assertion (join-shaped, non-sticky);
    * sameAs links vcard:personN ≡ foaf:agentN ≡ social:userN for a
      ``linked_fraction`` of people.
    """
    rng = random.Random(seed)
    vcard_graph = Graph(name="vcard")
    foaf_graph = Graph(name="foaf")
    social_graph = Graph(name="social")

    for i in range(people):
        name_literal = Literal(f"Person {i}")
        vcard_graph.add(
            Triple(VCARD.term(f"person{i}"), VCARD.fullName, name_literal)
        )
        foaf_graph.add(Triple(FOAF_NS.term(f"agent{i}"), FOAF_NS.name, name_literal))
        foaf_graph.add(
            Triple(
                FOAF_NS.term(f"agent{i}"),
                FOAF_NS.age,
                Literal(str(18 + (i * 7) % 60)),
            )
        )
        if rng.random() < linked_fraction:
            vcard_graph.add(
                Triple(
                    VCARD.term(f"person{i}"), OWL_SAME_AS, FOAF_NS.term(f"agent{i}")
                )
            )
        if rng.random() < linked_fraction:
            social_graph.add(
                Triple(
                    SOCIAL.term(f"user{i}"), OWL_SAME_AS, FOAF_NS.term(f"agent{i}")
                )
            )
    users = [SOCIAL.term(f"user{i}") for i in range(people)]
    for _ in range(knows_edges):
        a, b = rng.choice(users), rng.choice(users)
        if a != b:
            social_graph.add(Triple(a, SOCIAL.knows, b))

    x, y = Variable("x"), Variable("y")
    name_translation = GraphMappingAssertion(
        GraphPatternQuery((x, y), make_pattern((x, VCARD.fullName, y))),
        GraphPatternQuery((x, y), make_pattern((x, FOAF_NS.name, y))),
        source_peer="vcard",
        target_peer="foaf",
        label="fullName->name",
    )
    assertions: List[GraphMappingAssertion] = [name_translation]
    if include_fof:
        assertions.append(friend_of_friend_assertion())
    return RPS.from_graphs(
        {"vcard": vcard_graph, "foaf": foaf_graph, "social": social_graph},
        assertions=assertions,
        harvest_sameas=True,
    )
