"""The paper's running example (Figure 1 / Example 1 / Example 2).

Three sources:

* **Source 1** (``DB1:``) — films modelled through intermediate
  *starring* nodes: ``film --starring--> node --artist--> actor``; also
  stores ``owl:sameAs`` links for its film and actors.
* **Source 2** (``DB2:``) — films modelled with a direct ``actor``
  property.
* **Source 3** (``foaf:``) — people and their ages; stores the
  ``owl:sameAs`` link for Willem Dafoe.

Example 2 turns this into an RPS: one graph mapping assertion
``Q₂ ⇝ Q₁`` translating Source-2 ``actor`` edges into Source-1
starring/artist paths, plus one equivalence mapping per stored
``owl:sameAs`` triple.

The module also provides a *scaled* generator producing the same shape
at arbitrary size for the Theorem-1 data-complexity experiments.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import (
    FOAF_NS,
    Namespace,
    NamespaceManager,
    OWL_SAME_AS,
)
from repro.rdf.terms import BlankNode, Literal, Variable
from repro.rdf.triples import Triple
from repro.peers.mappings import GraphMappingAssertion
from repro.peers.system import RPS

__all__ = [
    "DB1",
    "DB2",
    "FOAF",
    "figure1_graphs",
    "figure1_namespaces",
    "example2_rps",
    "example2_assertion",
    "paper_query_text",
    "PAPER_EXPECTED_ANSWERS",
    "PAPER_EXPECTED_NONREDUNDANT",
    "scaled_film_rps",
]

DB1 = Namespace("http://db1.example.org/")
DB2 = Namespace("http://db2.example.org/")
FOAF = FOAF_NS


def figure1_namespaces() -> NamespaceManager:
    """Namespace manager binding DB1/DB2/foaf/owl for display & parsing."""
    nsm = NamespaceManager()
    nsm.bind("DB1", DB1.base)
    nsm.bind("DB2", DB2.base)
    return nsm


def figure1_graphs() -> Dict[str, Graph]:
    """The three stored databases of Figure 1, verbatim.

    Blank nodes ``_:st1``/``_:st2`` are the Source-1 starring nodes; the
    figure's sameAs links are stored in Sources 1 and 3 exactly as the
    paper describes.
    """
    st1, st2 = BlankNode("st1"), BlankNode("st2")
    source1 = Graph(
        [
            Triple(DB1.Spiderman, DB1.starring, st1),
            Triple(st1, DB1.artist, DB1.Toby_Maguire),
            Triple(DB1.Spiderman, DB1.starring, st2),
            Triple(st2, DB1.artist, DB1.Kirsten_Dunst),
            Triple(DB1.Spiderman, OWL_SAME_AS, DB2.Spiderman2002),
            Triple(DB1.Toby_Maguire, OWL_SAME_AS, FOAF.Toby_Maguire),
            Triple(DB1.Kirsten_Dunst, OWL_SAME_AS, FOAF.Kirsten_Dunst),
        ],
        name="source1",
    )
    source2 = Graph(
        [
            Triple(DB2.Spiderman2002, DB2.actor, DB2.Willem_Dafoe),
            Triple(DB2.Pleasantville, DB2.actor, DB2.Toby_Maguire),
        ],
        name="source2",
    )
    source3 = Graph(
        [
            Triple(FOAF.Toby_Maguire, FOAF.age, Literal("39")),
            Triple(FOAF.Kirsten_Dunst, FOAF.age, Literal("32")),
            Triple(FOAF.Willem_Dafoe, FOAF.age, Literal("59")),
            Triple(DB2.Willem_Dafoe, OWL_SAME_AS, FOAF.Willem_Dafoe),
        ],
        name="source3",
    )
    return {"source1": source1, "source2": source2, "source3": source3}


def example2_assertion() -> GraphMappingAssertion:
    """The single assertion of Example 2: ``Q₂ ⇝ Q₁``.

    * Q₂ := q(x, y) ← (x, actor, y) over Source 2;
    * Q₁ := q(x, y) ← (x, starring, z) AND (z, artist, y) over Source 1.
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    q2 = GraphPatternQuery((x, y), make_pattern((x, DB2.actor, y)), name="Q2")
    q1 = GraphPatternQuery(
        (x, y),
        make_pattern((x, DB1.starring, z), (z, DB1.artist, y)),
        name="Q1",
    )
    return GraphMappingAssertion(
        q2, q1, source_peer="source2", target_peer="source1", label="Q2~>Q1"
    )


def example2_rps() -> RPS:
    """The full RPS of Example 2 over the Figure-1 data.

    E contains one equivalence per stored ``owl:sameAs`` triple; G is the
    single ``Q₂ ⇝ Q₁`` assertion.
    """
    return RPS.from_graphs(
        figure1_graphs(),
        assertions=[example2_assertion()],
        harvest_sameas=True,
    )


def paper_query_text() -> str:
    """The SPARQL query of Example 1 / Listing 1."""
    return """
        PREFIX DB1: <http://db1.example.org/>
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        SELECT ?x ?y
        WHERE { DB1:Spiderman DB1:starring ?z .
                ?z DB1:artist ?x .
                ?x foaf:age ?y }
    """


#: The six Listing-1 answers (with sameAs redundancy).
PAPER_EXPECTED_ANSWERS = frozenset(
    {
        (DB1.Toby_Maguire, Literal("39")),
        (FOAF.Toby_Maguire, Literal("39")),
        (DB1.Kirsten_Dunst, Literal("32")),
        (FOAF.Kirsten_Dunst, Literal("32")),
        (DB2.Willem_Dafoe, Literal("59")),
        (FOAF.Willem_Dafoe, Literal("59")),
    }
)

#: Listing 1 "Result without redundancy".
PAPER_EXPECTED_NONREDUNDANT = frozenset(
    {
        (DB1.Toby_Maguire, Literal("39")),
        (DB1.Kirsten_Dunst, Literal("32")),
        (DB2.Willem_Dafoe, Literal("59")),
    }
)


def scaled_film_rps(
    films: int,
    actors_per_film: int = 3,
    linked_fraction: float = 1.0,
    seed: int = 0,
) -> RPS:
    """A Figure-1-shaped RPS at configurable scale.

    Source 1 stores ``films`` films in the starring/artist shape, Source
    2 stores the same films in the direct ``actor`` shape under its own
    IRIs, and Source 3 stores one age per actor.  A ``linked_fraction``
    of the film/actor entity pairs get ``owl:sameAs`` links (harvested
    into E), modelling partially-linked LOD sources.

    Args:
        films: number of films per source.
        actors_per_film: actors starring in each film.
        linked_fraction: fraction of entities with sameAs links.
        seed: RNG seed (only the link sampling is randomised).

    Returns:
        The RPS (assertion Q₂ ⇝ Q₁ plus harvested equivalences); the
        stored database grows linearly in ``films × actors_per_film``.
    """
    rng = random.Random(seed)
    source1 = Graph(name="source1")
    source2 = Graph(name="source2")
    source3 = Graph(name="source3")
    for f in range(films):
        film1 = DB1.term(f"film{f}")
        film2 = DB2.term(f"movie{f}")
        if rng.random() < linked_fraction:
            source1.add(Triple(film1, OWL_SAME_AS, film2))
        for a in range(actors_per_film):
            actor_id = f * actors_per_film + a
            actor1 = DB1.term(f"actor{actor_id}")
            actor2 = DB2.term(f"player{actor_id}")
            person = FOAF.term(f"person{actor_id}")
            node = BlankNode(f"st_{f}_{a}")
            source1.add(Triple(film1, DB1.starring, node))
            source1.add(Triple(node, DB1.artist, actor1))
            source2.add(Triple(film2, DB2.actor, actor2))
            source3.add(
                Triple(person, FOAF.age, Literal(str(18 + actor_id % 60)))
            )
            if rng.random() < linked_fraction:
                source1.add(Triple(actor1, OWL_SAME_AS, person))
            if rng.random() < linked_fraction:
                source3.add(Triple(actor2, OWL_SAME_AS, person))
    return RPS.from_graphs(
        {"source1": source1, "source2": source2, "source3": source3},
        assertions=[example2_assertion()],
        harvest_sameas=True,
    )
