"""Query workload generators: path- and star-shaped graph pattern queries.

Conjunctive query shapes standard in RDF benchmarking: *paths* chain
triple patterns through shared variables (like the paper's Listing-1
query) and *stars* fan out around a common subject.  Generators target
either the synthetic topology peers or arbitrary vocabularies.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.terms import IRI, Term, Variable

__all__ = ["path_query", "star_query", "random_queries"]


def path_query(
    predicates: Sequence[IRI],
    anchor: Optional[Term] = None,
    project_all: bool = False,
) -> GraphPatternQuery:
    """A path query ``(a, p₁, v₁)(v₁, p₂, v₂)…(vₖ₋₁, pₖ, vₖ)``.

    Args:
        predicates: the predicate of each hop (length = path length).
        anchor: optional ground start term; a variable ``?v0`` otherwise.
        project_all: project every variable instead of just the last.
    """
    if not predicates:
        raise ValueError("path query needs at least one predicate")
    start: Term = anchor if anchor is not None else Variable("v0")
    patterns = []
    current = start
    variables: List[Variable] = []
    if isinstance(start, Variable):
        variables.append(start)
    for i, predicate in enumerate(predicates, start=1):
        nxt = Variable(f"v{i}")
        patterns.append((current, predicate, nxt))
        variables.append(nxt)
        current = nxt
    head = tuple(variables) if project_all else (variables[-1],)
    return GraphPatternQuery(head, make_pattern(*patterns), name="path")


def star_query(
    predicates: Sequence[IRI],
    center: Optional[Term] = None,
) -> GraphPatternQuery:
    """A star query ``(c, p₁, v₁)(c, p₂, v₂)…`` projecting the leaves."""
    if not predicates:
        raise ValueError("star query needs at least one predicate")
    hub: Term = center if center is not None else Variable("c")
    patterns = []
    leaves: List[Variable] = []
    for i, predicate in enumerate(predicates, start=1):
        leaf = Variable(f"l{i}")
        patterns.append((hub, predicate, leaf))
        leaves.append(leaf)
    return GraphPatternQuery(tuple(leaves), make_pattern(*patterns), name="star")


def random_queries(
    predicates: Sequence[IRI],
    count: int,
    max_length: int = 3,
    seed: int = 0,
) -> List[GraphPatternQuery]:
    """A mixed bag of random path and star queries over a vocabulary."""
    rng = random.Random(seed)
    out: List[GraphPatternQuery] = []
    if not predicates:
        return out
    for i in range(count):
        length = rng.randint(1, max_length)
        chosen = [rng.choice(list(predicates)) for _ in range(length)]
        if rng.random() < 0.5:
            out.append(path_query(chosen))
        else:
            out.append(star_query(chosen))
    return out
