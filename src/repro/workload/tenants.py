"""Multi-tenant offered loads for the concurrent-execution bench.

A PDMS coordinator answers many peers' queries at once, so the
concurrency benchmarks need *offered load*: a deterministic set of
tenants, each submitting one federated query drawn from the standard
templates (:func:`~repro.workload.federation.federated_path_query` and
friends).  Two shapes:

* :func:`tenant_workload` — a seeded mix of path / selective /
  exclusive queries across N tenants, the throughput-vs-load workload.
  Distinct tenants that draw the same template parameters share one
  query *object*, so the executor's prepared-plan reuse is exercised.
* :func:`skewed_tenant_workload` — one heavy tenant flooding the
  endpoints with a full path query next to a set of light anchored
  queries, the starvation workload the fairness disciplines are judged
  on.

Everything is a pure function of the seed: the same arguments always
produce the same tenants, queries and weights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.gpq.query import GraphPatternQuery
from repro.workload.federation import (
    federated_exclusive_query,
    federated_path_query,
    federated_selective_query,
)

__all__ = ["TenantQuery", "skewed_tenant_workload", "tenant_workload"]


@dataclass(frozen=True)
class TenantQuery:
    """One tenant's submission: a name, a query and a fairness weight."""

    tenant: str
    query: GraphPatternQuery
    weight: int = 1


def tenant_workload(
    tenants: int, seed: int = 0, entities: int = 20
) -> List[TenantQuery]:
    """A deterministic mixed offered load of ``tenants`` queries.

    Each tenant draws one template — selective path (twice as likely,
    the common cheap query), full path, or exclusive-group — with
    seeded parameters.  Tenants drawing identical parameters share the
    same query object, so the multi-tenant entry point's prepared-plan
    reuse kicks in exactly as it would for repeated real traffic.
    ``entities`` bounds the selective template's anchor entity (match
    it to the system's entity count).
    """
    if tenants < 1:
        raise ValueError(f"need >= 1 tenant: {tenants}")
    rng = random.Random(seed)
    shared: Dict[Tuple, GraphPatternQuery] = {}
    out: List[TenantQuery] = []
    for i in range(tenants):
        kind = rng.choice(("selective", "selective", "path", "exclusive"))
        if kind == "selective":
            key: Tuple = ("selective", rng.randrange(entities), 2)
            if key not in shared:
                shared[key] = federated_selective_query(
                    entity=key[1], hops=key[2]
                )
        elif kind == "path":
            key = ("path", rng.choice((1, 2)))
            if key not in shared:
                shared[key] = federated_path_query(hops=key[1])
        else:
            key = ("exclusive", 1)
            if key not in shared:
                shared[key] = federated_exclusive_query(hops=key[1])
        out.append(TenantQuery(f"t{i}", shared[key]))
    return out


def skewed_tenant_workload(
    light: int = 3, seed: int = 0, entities: int = 20
) -> List[TenantQuery]:
    """One flooding tenant next to ``light`` cheap anchored queries.

    The heavy tenant runs the full 2-hop path query — a burst of
    bound-join batches against every endpoint — while each light
    tenant runs one anchored selective query that needs only a few
    small requests.  Under FIFO admission the burst lands first and
    the light tenants queue behind all of it; a fairness discipline
    should interleave them instead, which the bench measures as the
    max/min per-tenant makespan ratio.
    """
    if light < 1:
        raise ValueError(f"need >= 1 light tenant: {light}")
    rng = random.Random(seed)
    out = [TenantQuery("heavy", federated_path_query(hops=2))]
    for i in range(light):
        out.append(
            TenantQuery(
                f"light{i}",
                federated_selective_query(
                    entity=rng.randrange(entities), hops=2
                ),
            )
        )
    return out
