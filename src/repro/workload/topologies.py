"""Mapping-topology workload generators.

Builds RPS instances whose peers are arranged in the topologies the
paper's motivation discusses — chains, stars, cycles and random
(Erdős–Rényi / scale-free) graphs.  Each edge peer→peer carries either a
*vocabulary-translation* graph mapping assertion (predicate renaming,
the simplest non-trivial assertion) or sameAs-style equivalence links.

These are the workloads for the E-SC1 scalability experiment: prior
two-tier rewriting approaches cannot handle cycles, while the RPS chase
must terminate regardless of topology (Theorem 1).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal, Variable
from repro.rdf.triples import Triple
from repro.peers.mappings import EquivalenceMapping, GraphMappingAssertion
from repro.peers.system import RPS

__all__ = [
    "peer_namespace",
    "build_topology_rps",
    "chain_rps",
    "star_rps",
    "cycle_rps",
    "random_rps",
    "TOPOLOGY_BUILDERS",
]


def peer_namespace(index: int) -> Namespace:
    """Namespace of the i-th synthetic peer."""
    return Namespace(f"http://peer{index}.example.org/")


def _peer_graph(
    index: int,
    entities: int,
    facts: int,
    rng: random.Random,
) -> Graph:
    """Local data for one peer: ``knows`` edges plus ``age`` attributes.

    Every peer uses its own vocabulary (``peerN:knows`` etc.) so that
    information only flows through mappings.
    """
    ns = peer_namespace(index)
    graph = Graph(name=f"peer{index}")
    entity_iris = [ns.term(f"e{j}") for j in range(entities)]
    knows = ns.knows
    age = ns.age
    for _ in range(facts):
        a, b = rng.choice(entity_iris), rng.choice(entity_iris)
        graph.add(Triple(a, knows, b))
    for iri in entity_iris:
        graph.add(Triple(iri, age, Literal(str(rng.randint(10, 80)))))
    return graph


def _translation_assertion(source: int, target: int) -> GraphMappingAssertion:
    """``(x, peerS:knows, y) ⇝ (x, peerT:knows, y)``.

    The simplest vocabulary translation: whatever the source peer states
    with its ``knows`` predicate must be derivable in the target peer's
    vocabulary.
    """
    x, y = Variable("x"), Variable("y")
    src_ns, tgt_ns = peer_namespace(source), peer_namespace(target)
    q_src = GraphPatternQuery((x, y), make_pattern((x, src_ns.knows, y)))
    q_tgt = GraphPatternQuery((x, y), make_pattern((x, tgt_ns.knows, y)))
    return GraphMappingAssertion(
        q_src,
        q_tgt,
        source_peer=f"peer{source}",
        target_peer=f"peer{target}",
        label=f"peer{source}->peer{target}",
    )


def _entity_links(
    source: int, target: int, entities: int, fraction: float, rng: random.Random
) -> List[EquivalenceMapping]:
    """Equivalences identifying a fraction of entity IRIs across 2 peers."""
    src_ns, tgt_ns = peer_namespace(source), peer_namespace(target)
    out = []
    for j in range(entities):
        if rng.random() < fraction:
            out.append(
                EquivalenceMapping(src_ns.term(f"e{j}"), tgt_ns.term(f"e{j}"))
            )
    return out


def build_topology_rps(
    edges: Iterable[Tuple[int, int]],
    peers: int,
    entities: int = 10,
    facts: int = 20,
    link_fraction: float = 0.3,
    seed: int = 0,
) -> RPS:
    """Assemble an RPS from a peer-index edge list.

    Each directed edge (s, t) contributes one translation assertion
    s ⇝ t plus entity equivalences for a ``link_fraction`` of entities.

    The peers' schemas are extended with the IRIs their incoming
    assertions may introduce (the target queries use the target peer's
    vocabulary, which the peer already has; equivalences reference both
    sides' entity IRIs, which both schemas already contain).
    """
    rng = random.Random(seed)
    graphs: Dict[str, Graph] = {
        f"peer{i}": _peer_graph(i, entities, facts, rng) for i in range(peers)
    }
    assertions: List[GraphMappingAssertion] = []
    equivalences: List[EquivalenceMapping] = []
    seen_links = set()
    for source, target in edges:
        assertions.append(_translation_assertion(source, target))
        pair = frozenset((source, target))
        if pair in seen_links:
            continue
        seen_links.add(pair)
        equivalences.extend(
            _entity_links(source, target, entities, link_fraction, rng)
        )
    return RPS.from_graphs(graphs, assertions, equivalences)


def chain_rps(peers: int, **kwargs) -> RPS:
    """peer0 ⇝ peer1 ⇝ … ⇝ peerN-1."""
    return build_topology_rps(
        [(i, i + 1) for i in range(peers - 1)], peers, **kwargs
    )


def star_rps(peers: int, **kwargs) -> RPS:
    """All satellite peers map into peer0 (a hub)."""
    return build_topology_rps([(i, 0) for i in range(1, peers)], peers, **kwargs)


def cycle_rps(peers: int, **kwargs) -> RPS:
    """peer0 ⇝ peer1 ⇝ … ⇝ peerN-1 ⇝ peer0 — the case prior two-tier
    rewriting approaches cannot express."""
    return build_topology_rps(
        [(i, (i + 1) % peers) for i in range(peers)], peers, **kwargs
    )


def random_rps(
    peers: int, edge_probability: float = 0.3, seed: int = 0, **kwargs
) -> RPS:
    """Erdős–Rényi directed topology (self-loops excluded)."""
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(
        peers, edge_probability, seed=seed, directed=True
    )
    edges = [(u, v) for u, v in graph.edges() if u != v]
    if not edges and peers > 1:
        edges = [(0, 1)]
    return build_topology_rps(edges, peers, seed=seed, **kwargs)


#: Name → builder, used by the scalability sweep benchmarks.
TOPOLOGY_BUILDERS = {
    "chain": chain_rps,
    "star": star_rps,
    "cycle": cycle_rps,
    "random": random_rps,
}
