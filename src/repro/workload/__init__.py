"""Workload generators: paper datasets and synthetic scaling workloads.

``film_domain`` encodes Figure 1 / Example 2 verbatim plus a scaled
variant; ``people_domain`` adds a second realistic domain with a
non-sticky join assertion; ``generators`` produce random RDF stores;
``topologies`` arrange synthetic peers in chains, stars, cycles and
random graphs; ``queries`` generates path/star query workloads.
"""

from repro.workload.film_domain import (
    DB1,
    DB2,
    FOAF,
    PAPER_EXPECTED_ANSWERS,
    PAPER_EXPECTED_NONREDUNDANT,
    example2_assertion,
    example2_rps,
    figure1_graphs,
    figure1_namespaces,
    paper_query_text,
    scaled_film_rps,
)
from repro.workload.generators import (
    GeneratorConfig,
    random_entity_graph,
    random_graph,
)
from repro.workload.people_domain import (
    SOCIAL,
    VCARD,
    friend_of_friend_assertion,
    people_rps,
)
from repro.workload.federation import (
    SHARED,
    federated_exclusive_query,
    federated_path_query,
    federated_rps,
    federated_selective_query,
    federated_union_filter_sparql,
    grow_knows_relation,
)
from repro.workload.queries import path_query, random_queries, star_query
from repro.workload.tenants import (
    TenantQuery,
    skewed_tenant_workload,
    tenant_workload,
)
from repro.workload.topologies import (
    TOPOLOGY_BUILDERS,
    build_topology_rps,
    chain_rps,
    cycle_rps,
    peer_namespace,
    random_rps,
    star_rps,
)

__all__ = [
    "DB1",
    "DB2",
    "FOAF",
    "GeneratorConfig",
    "PAPER_EXPECTED_ANSWERS",
    "PAPER_EXPECTED_NONREDUNDANT",
    "SHARED",
    "SOCIAL",
    "TOPOLOGY_BUILDERS",
    "TenantQuery",
    "VCARD",
    "build_topology_rps",
    "chain_rps",
    "cycle_rps",
    "example2_assertion",
    "example2_rps",
    "federated_exclusive_query",
    "federated_path_query",
    "federated_rps",
    "federated_selective_query",
    "federated_union_filter_sparql",
    "figure1_graphs",
    "figure1_namespaces",
    "friend_of_friend_assertion",
    "grow_knows_relation",
    "paper_query_text",
    "path_query",
    "peer_namespace",
    "people_rps",
    "random_entity_graph",
    "random_graph",
    "random_queries",
    "random_rps",
    "scaled_film_rps",
    "skewed_tenant_workload",
    "star_query",
    "star_rps",
    "tenant_workload",
]
