"""Federation workloads: peers over a shared entity space.

The topology workloads in :mod:`repro.workload.topologies` give every
peer a private entity namespace, so a conjunctive query joining across
peer vocabularies is empty by construction.  Federated execution needs
the opposite: peers that *store facts about the same entities* in their
own predicate vocabularies, so cross-peer joins carry data.  This module
builds such systems, plus the cross-vocabulary path queries the
federation benchmarks and tests run over them.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.federation.faults import FaultModel, FaultSpec
from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.peers.system import RPS
from repro.workload.topologies import peer_namespace

__all__ = [
    "SHARED",
    "blackout_fault_model",
    "federated_rps",
    "federated_ask_sparql",
    "federated_exclusive_query",
    "federated_limit_sparql",
    "federated_optional_filter_sparql",
    "federated_optional_sparql",
    "federated_path_query",
    "federated_selective_query",
    "federated_topk_sparql",
    "federated_union_filter_sparql",
    "flaky_fault_model",
    "grow_knows_relation",
    "outage_fault_model",
]

#: The entity namespace every federation peer describes.
SHARED = Namespace("http://shared.example.org/")


def federated_rps(
    peers: int = 3,
    entities: int = 30,
    facts: int = 60,
    seed: int = 0,
) -> RPS:
    """An RPS whose peers describe one shared entity set.

    Peer *k* stores ``facts`` random ``peerk:knows`` edges between the
    shared entities plus one ``peerk:age`` attribute per entity it
    mentions.  Predicates are peer-private, so schema-based source
    selection routes each triple pattern to exactly one peer, while the
    shared subjects/objects make cross-peer joins non-trivial.
    """
    rng = random.Random(seed)
    entity_iris = [SHARED.term(f"e{i}") for i in range(entities)]
    graphs: Dict[str, Graph] = {}
    for k in range(peers):
        ns = peer_namespace(k)
        knows, age = ns.knows, ns.age
        graph = Graph(name=f"peer{k}")
        mentioned = set()
        for _ in range(facts):
            a, b = rng.choice(entity_iris), rng.choice(entity_iris)
            graph.add(Triple(a, knows, b))
            mentioned.update((a, b))
        for iri in sorted(mentioned, key=lambda t: t.sort_key()):
            graph.add(Triple(iri, age, Literal(str(rng.randint(10, 80)))))
        graphs[f"peer{k}"] = graph
    return RPS.from_graphs(graphs)


def federated_path_query(
    hops: int = 2, project_all: bool = False
) -> GraphPatternQuery:
    """A path query whose i-th hop uses peer i's ``knows`` predicate.

    ``(x0, peer0:knows, x1)(x1, peer1:knows, x2)…`` — each conjunct is
    answerable by exactly one peer, and consecutive conjuncts join on a
    shared variable, the canonical bound-join workload.
    """
    if hops < 1:
        raise ValueError("path query needs at least one hop")
    variables: List[Variable] = [Variable(f"x{i}") for i in range(hops + 1)]
    patterns = [
        (variables[i], peer_namespace(i).knows, variables[i + 1])
        for i in range(hops)
    ]
    head = tuple(variables) if project_all else (variables[0], variables[-1])
    return GraphPatternQuery(head, make_pattern(*patterns), name="fedpath")


def federated_selective_query(
    entity: int = 3, hops: int = 2
) -> GraphPatternQuery:
    """A path query anchored at one shared entity.

    ``(e_k, peer0:knows, x1)(x1, peer1:knows, x2)…`` — the ground
    subject keeps intermediate binding sets tiny, the canonical workload
    where bound joins beat shipping whole relations.
    """
    if hops < 1:
        raise ValueError("selective query needs at least one hop")
    start = SHARED.term(f"e{entity}")
    variables: List[Variable] = [Variable(f"x{i}") for i in range(1, hops + 1)]
    patterns = [(start, peer_namespace(0).knows, variables[0])]
    for i in range(1, hops):
        patterns.append(
            (variables[i - 1], peer_namespace(i).knows, variables[i])
        )
    return GraphPatternQuery(
        tuple(variables), make_pattern(*patterns), name="fedselective"
    )


def federated_exclusive_query(hops: int = 1) -> GraphPatternQuery:
    """A query with two conjuncts exclusive to peer 0 plus a path.

    ``(x0, peer0:knows, x1)(x0, peer0:age, a)(x1, peer1:knows, x2)…`` —
    the first two conjuncts are answerable by exactly one endpoint
    (peer 0 owns both predicates), the canonical FedX *exclusive group*:
    a fused endpoint-side sub-query answers both in one round trip and
    only the joined solutions travel.  The remaining ``hops`` conjuncts
    continue the path through the other peers' ``knows`` predicates.
    """
    if hops < 1:
        raise ValueError("exclusive query needs at least one onward hop")
    ns0 = peer_namespace(0)
    x0, age = Variable("x0"), Variable("a")
    variables: List[Variable] = [Variable(f"x{i}") for i in range(1, hops + 2)]
    patterns = [
        (x0, ns0.knows, variables[0]),
        (x0, ns0.age, age),
    ]
    for i in range(1, hops + 1):
        patterns.append(
            (variables[i - 1], peer_namespace(i).knows, variables[i])
        )
    return GraphPatternQuery(
        (x0, age, variables[-1]), make_pattern(*patterns), name="fedexclusive"
    )


def grow_knows_relation(
    system: RPS,
    peer: int = 0,
    extra_facts: int = 500,
    seed: int = 99,
    hub: Optional[int] = None,
) -> int:
    """Mutate a federated system: bulk-load one peer's ``knows`` relation.

    Models the scenario the statistics-TTL machinery exists for: after a
    :class:`~repro.federation.executor.FederatedExecutor` has fetched a
    peer's cardinalities, the peer's database grows by ``extra_facts``
    edges — so a catalog older than its TTL keeps planning against
    yesterday's (much smaller) counts.

    Two growth shapes:

    * ``hub=None`` — random edges over the entities the relation
      already mentions.  Every cardinality scales roughly uniformly.
    * ``hub=k`` — every new edge leaves one *hub* entity (``e{k}``)
      towards fresh, previously unseen entities.  The relation count
      explodes while the match count of patterns anchored at any other
      entity stays put — the asymmetry that flips a fresh cost model's
      pull-vs-ship decision and leaves a stale one transferring the
      whole grown relation.

    Returns the number of triples actually added (duplicates collapse).
    """
    name = f"peer{peer}"
    if name not in system.peers:
        raise ValueError(f"system has no peer named {name!r}")
    graph = system.peers[name].graph
    knows = peer_namespace(peer).knows
    before = len(graph)
    if hub is not None:
        source = SHARED.term(f"e{hub}")
        for i in range(extra_facts):
            graph.add(Triple(source, knows, SHARED.term(f"hub{peer}_{i}")))
        return len(graph) - before
    pattern = TriplePattern(Variable("s"), knows, Variable("o"))
    mentioned = set()
    for triple in graph.match(pattern):
        mentioned.add(triple.subject)
        mentioned.add(triple.object)
    entities = sorted(mentioned, key=lambda t: t.sort_key())
    if not entities:
        raise ValueError(f"{name} holds no knows edges to grow from")
    rng = random.Random(seed)
    for _ in range(extra_facts):
        a, b = rng.choice(entities), rng.choice(entities)
        graph.add(Triple(a, knows, b))
    return len(graph) - before


def federated_optional_sparql() -> str:
    """A SPARQL query with a federated OPTIONAL across two peers.

    Peer 0's ``knows`` edges, optionally extended with peer 1's ``age``
    of the target entity.  Peer 1 only stores ages for entities its own
    ``knows`` relation mentions, so some rows extend and some keep the
    age cell unbound — exercising the federated ``LeftJoin`` operator's
    keep-unmatched path against the single-graph evaluator.
    """
    p0 = peer_namespace(0).knows.n3()
    a1 = peer_namespace(1).age.n3()
    return (
        "SELECT ?x ?y ?a WHERE { "
        f"?x {p0} ?y OPTIONAL {{ ?y {a1} ?a }} }}"
    )


def federated_optional_filter_sparql(entity: int = 3) -> str:
    """A federated OPTIONAL whose group carries a top-level FILTER.

    Per the SPARQL translation the filter becomes the ``LeftJoin``
    condition and is evaluated on the *merged* row — it references the
    required side's ``?y`` — so rows whose only extensions fail the
    condition fall back to the unextended row instead of disappearing.
    """
    p0 = peer_namespace(0).knows.n3()
    p1 = peer_namespace(1).knows.n3()
    anchor = SHARED.term(f"e{entity}").n3()
    return (
        "SELECT ?x ?y ?z WHERE { "
        f"?x {p0} ?y OPTIONAL {{ ?y {p1} ?z FILTER(?z != {anchor}) }} }}"
    )


def _path_sparql_body(hops: int, anchor: Optional[int] = None) -> str:
    """The WHERE body of the cross-peer path query, as SPARQL text.

    With ``anchor`` set, the first hop's subject is the ground entity
    ``e{anchor}`` instead of a variable — the selective shape that makes
    bound joins the winning plan even without a demand cap.
    """
    if hops < 1:
        raise ValueError("path query needs at least one hop")
    conjuncts = []
    for i in range(hops):
        subject = (
            SHARED.term(f"e{anchor}").n3()
            if i == 0 and anchor is not None
            else f"?x{i}"
        )
        conjuncts.append(
            f"{subject} {peer_namespace(i).knows.n3()} ?x{i + 1}"
        )
    return " . ".join(conjuncts)


def federated_limit_sparql(
    hops: int = 2,
    limit: Optional[int] = None,
    offset: int = 0,
    anchor: Optional[int] = None,
) -> str:
    """The federated path query as SPARQL, with an optional slice.

    Same shape as :func:`federated_path_query` — hop *i* uses peer i's
    ``knows`` predicate, so every conjunct routes to one endpoint and
    bound joins carry the intermediate bindings.  A ``LIMIT`` turns it
    into the demand-propagation workload: the executor should stop
    issuing sub-queries once the window fills.  ``anchor`` grounds the
    first subject (see :func:`federated_selective_query`), keeping the
    unlimited plan on bound joins so limited and unlimited runs ship
    the *same kind* of messages and the slice's savings are isolated.
    """
    first = 0 if anchor is None else 1
    head = " ".join(f"?x{i}" for i in range(first, hops + 1))
    text = f"SELECT {head} WHERE {{ {_path_sparql_body(hops, anchor)} }}"
    if offset:
        text += f" OFFSET {offset}"
    if limit is not None:
        text += f" LIMIT {limit}"
    return text


def federated_topk_sparql(hops: int = 2, limit: int = 5) -> str:
    """A federated top-k: the path query ordered before its slice.

    ``ORDER BY`` names the path's *interior* variable (non-projected),
    so the engine must sort full solutions before projecting; the sort
    is a pipeline breaker, leaving the slice to trim a fully-drained
    result — the contrast case to :func:`federated_limit_sparql`.
    """
    text = f"SELECT ?x0 ?x{hops} WHERE {{ {_path_sparql_body(hops)} }}"
    return text + f" ORDER BY DESC(?x1) ?x0 LIMIT {limit}"


def federated_ask_sparql(hops: int = 2) -> str:
    """An ASK over the federated path: satisfiability, not enumeration.

    The executor answers it with demand one — the first surviving row
    short-circuits the whole bound-join pipeline.
    """
    return f"ASK {{ {_path_sparql_body(hops)} }}"


def federated_union_filter_sparql() -> str:
    """A SPARQL query past the conjunctive fragment: UNION of two peers'
    ``knows`` relations, filtered to distinct endpoints.

    Exercises UNION-branch and FILTER pushdown in the federated
    executor; the filter is decidable per branch pattern, so rejected
    rows never leave their endpoint.
    """
    p0 = peer_namespace(0).knows.n3()
    p1 = peer_namespace(1).knows.n3()
    return (
        "SELECT ?x ?y WHERE { "
        f"{{ ?x {p0} ?y }} UNION {{ ?x {p1} ?y }} . FILTER(?x != ?y) }}"
    )


# -- fault scenarios ---------------------------------------------------------


def flaky_fault_model(
    endpoint: str = "peer1",
    failure_rate: float = 0.25,
    timeout_rate: float = 0.1,
    seed: int = 11,
) -> FaultModel:
    """A probabilistically flaky endpoint (recoverable with retries).

    Error replies and timeouts at the given per-attempt rates; every
    other endpoint is healthy.  With a large enough retry budget the
    execution recovers a complete answer — the faults bench's
    ``flaky`` scenarios assert exactly that.
    """
    return FaultModel(
        specs={
            endpoint: FaultSpec(
                failure_rate=failure_rate, timeout_rate=timeout_rate
            )
        },
        seed=seed,
    )


def outage_fault_model(
    endpoint: str = "peer1",
    start: float = 0.0,
    end: float = 0.3,
    seed: int = 0,
) -> FaultModel:
    """A scripted outage window on one endpoint, in virtual time.

    Attempts landing while the execution's accumulated ``busy_seconds``
    is inside ``[start, end)`` fail deterministically; charged retries
    advance that clock, so a long enough retry budget *escapes* the
    window and recovers the full answer.
    """
    return FaultModel(
        specs={endpoint: FaultSpec(outages=((start, end),))}, seed=seed
    )


def blackout_fault_model(endpoint: str = "peer1", seed: int = 0) -> FaultModel:
    """A permanently dead endpoint: every attempt is an error reply.

    Without replicas no retry budget recovers it, so executions degrade
    to flagged partial answers naming exactly this endpoint; with a
    replica configured, failover recovers the complete answer.
    """
    return FaultModel(specs={endpoint: FaultSpec(failure_rate=1.0)}, seed=seed)
