"""Random RDF data generators.

Deterministic (seeded) generators for synthetic peers: entity-relation
graphs with configurable vocabulary sizes, literal attributes and blank
node fractions.  Used by the property tests (random-but-reproducible
stores) and as building blocks for the topology workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import BlankNode, Literal
from repro.rdf.triples import Triple

__all__ = ["GeneratorConfig", "random_graph", "random_entity_graph"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters for :func:`random_entity_graph`.

    Attributes:
        entities: number of entity IRIs.
        predicates: number of distinct relation predicates.
        triples: number of relation triples to generate.
        attributes: number of literal-attribute triples to generate.
        blank_fraction: probability an entity position uses a blank node.
        namespace: IRI prefix for minted terms.
        seed: RNG seed.
    """

    entities: int = 50
    predicates: int = 5
    triples: int = 150
    attributes: int = 30
    blank_fraction: float = 0.0
    namespace: str = "http://gen.example.org/"
    seed: int = 0


def random_entity_graph(config: GeneratorConfig, name: str = "") -> Graph:
    """Generate a random entity-relation RDF graph.

    Entities are ``ns:eN``, predicates ``ns:pN``, attribute values are
    integer literals.  With ``blank_fraction > 0`` some subjects/objects
    are blank nodes ``_:bN`` (modelling unidentified resources).
    """
    rng = random.Random(config.seed)
    ns = Namespace(config.namespace)
    entity_terms: List = []
    for i in range(config.entities):
        if rng.random() < config.blank_fraction:
            entity_terms.append(BlankNode(f"b{i}"))
        else:
            entity_terms.append(ns.term(f"e{i}"))
    predicates = [ns.term(f"p{i}") for i in range(config.predicates)]
    attribute_predicate = ns.term("value")

    graph = Graph(name=name or "random")
    if not entity_terms or not predicates:
        return graph
    for _ in range(config.triples):
        subject = rng.choice(entity_terms)
        predicate = rng.choice(predicates)
        object_ = rng.choice(entity_terms)
        graph.add(Triple(subject, predicate, object_))
    for _ in range(config.attributes):
        subject = rng.choice(entity_terms)
        value = Literal(str(rng.randint(0, 99)))
        graph.add(Triple(subject, attribute_predicate, value))
    return graph


def random_graph(
    triples: int = 100,
    seed: int = 0,
    namespace: str = "http://gen.example.org/",
    blank_fraction: float = 0.0,
) -> Graph:
    """Shorthand for a random graph of roughly ``triples`` triples."""
    config = GeneratorConfig(
        entities=max(4, triples // 3),
        predicates=max(2, triples // 25),
        triples=triples,
        attributes=max(1, triples // 5),
        blank_fraction=blank_fraction,
        namespace=namespace,
        seed=seed,
    )
    return random_entity_graph(config)
